(** Sequential reference implementations and result-equivalence predicates.

    Each predicate states what {e every} point of the schedule space must
    produce, tolerating the nondeterminism the algorithm legitimately has:

    - shortest-path distances are unique, so SSSP/wBFS compare exact
      arrays against sequential Dijkstra (itself cross-checked against an
      independent Bellman-Ford — two shared-nothing references must agree
      before either is trusted to judge a parallel run);
    - PPSP and A* compare the single source→target distance (the paths and
      the set of settled vertices may differ per schedule);
    - coreness values are unique (Matula–Beck), so k-core compares exact
      arrays against the sequential peel;
    - set cover only promises an approximation, so the predicate is
      validity plus the 4×-of-greedy size envelope — any cover in that
      envelope passes, whatever tie-breaking the schedule induced.

    The checkers live in a record precisely so tests can graft a broken
    one in ({!default} with a field override) and prove the sweep's
    failure path — shrinking, repro line — actually fires. *)

type t = {
  sssp : Graphs.Csr.t -> source:int -> int array -> (unit, string) result;
      (** Judges a full distance array (SSSP and wBFS). *)
  ppsp :
    Graphs.Csr.t -> source:int -> target:int -> int -> (unit, string) result;
      (** Judges a point-to-point distance (PPSP and A-star). *)
  kcore : Graphs.Csr.t -> int array -> (unit, string) result;
      (** Judges a coreness array; the graph must be symmetric. *)
  setcover : Graphs.Csr.t -> Algorithms.Setcover.result -> (unit, string) result;
      (** Judges cover validity and size; the graph must be symmetric. *)
}

val default : t

(** [bellman_ford graph ~source] is the independent sequential reference
    used to cross-check Dijkstra (exposed for the unit tests); unreachable
    vertices hold {!Bucketing.Bucket_order.null_priority}. *)
val bellman_ford : Graphs.Csr.t -> source:int -> int array
