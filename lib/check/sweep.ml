module Pool = Parallel.Pool
module Csr = Graphs.Csr
module Edge_list = Graphs.Edge_list
module Coords = Graphs.Coords
module Layout = Graphs.Layout
module Reorder = Graphs.Reorder
module Handle = Graphs.Handle
module Graph_bin = Graphs.Graph_bin
module Schedule = Ordered.Schedule
module Rng = Support.Rng

type app = Sssp | Wbfs | Ppsp | Astar | Kcore | Setcover

let all_apps = [ Sssp; Wbfs; Ppsp; Astar; Kcore; Setcover ]

let app_to_string = function
  | Sssp -> "sssp"
  | Wbfs -> "wbfs"
  | Ppsp -> "ppsp"
  | Astar -> "astar"
  | Kcore -> "kcore"
  | Setcover -> "setcover"

let app_of_string = function
  | "sssp" -> Ok Sssp
  | "wbfs" -> Ok Wbfs
  | "ppsp" -> Ok Ppsp
  | "astar" -> Ok Astar
  | "kcore" -> Ok Kcore
  | "setcover" -> Ok Setcover
  | s -> Error (Printf.sprintf "unknown app %S" s)

(* ---------------- substrate variants ---------------- *)

(* The storage-substrate axis: every schedule-space point can additionally
   run on a compressed layout, a reordered vertex numbering, and/or a
   graph that took a save-bin -> load-bin round trip. The oracles judge
   the app on the {e same} transformed graph, so a variant failure
   isolates the substrate, not the algorithm. *)
type variant = {
  layout : Layout.kind;
  reorder : Reorder.kind;
  bin_roundtrip : bool;
}

let default_variant =
  { layout = Layout.Plain; reorder = Reorder.Identity; bin_roundtrip = false }

let default_variants =
  [
    default_variant;
    { default_variant with layout = Layout.Compressed };
    { default_variant with reorder = Reorder.Degree };
    {
      default_variant with
      layout = Layout.Compressed;
      reorder = Reorder.Degree;
    };
    { default_variant with bin_roundtrip = true };
  ]

let variant_to_flags v =
  String.concat ""
    [
      (if v.layout = Layout.Plain then ""
       else " --layout " ^ Layout.kind_to_string v.layout);
      (if v.reorder = Reorder.Identity then ""
       else " --reorder " ^ Reorder.kind_to_string v.reorder);
      (if v.bin_roundtrip then " --bin" else "");
    ]

(* ---------------- schedule <-> repro string ---------------- *)

let schedule_to_string (s : Schedule.t) =
  Printf.sprintf
    "strategy=%s,delta=%d,threshold=%d,buckets=%d,traversal=%s,chunk=%d,sched=%s,incr=%g"
    (Schedule.strategy_to_string s.Schedule.strategy)
    s.Schedule.delta s.Schedule.fusion_threshold s.Schedule.num_open_buckets
    (Schedule.traversal_to_string s.Schedule.traversal)
    s.Schedule.chunk_size
    (Schedule.sched_to_string s.Schedule.sched)
    s.Schedule.incremental_threshold

let ( let* ) = Result.bind

let schedule_of_string str =
  let* fields =
    List.fold_left
      (fun acc kv ->
        let* acc = acc in
        match String.index_opt kv '=' with
        | None -> Error (Printf.sprintf "schedule: expected key=value, got %S" kv)
        | Some i ->
            Ok
              (( String.sub kv 0 i,
                 String.sub kv (i + 1) (String.length kv - i - 1) )
              :: acc))
      (Ok [])
      (String.split_on_char ',' str)
  in
  let int_of key v =
    match int_of_string_opt v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "schedule: %s is not an integer: %S" key v)
  in
  let* s =
    List.fold_left
      (fun acc (key, v) ->
        let* s = acc in
        match key with
        | "strategy" ->
            let* strategy = Schedule.strategy_of_string v in
            Ok { s with Schedule.strategy }
        | "delta" ->
            let* delta = int_of key v in
            Ok { s with Schedule.delta }
        | "threshold" ->
            let* fusion_threshold = int_of key v in
            Ok { s with Schedule.fusion_threshold }
        | "buckets" ->
            let* num_open_buckets = int_of key v in
            Ok { s with Schedule.num_open_buckets }
        | "traversal" ->
            let* traversal = Schedule.traversal_of_string v in
            Ok { s with Schedule.traversal }
        | "chunk" ->
            let* chunk_size = int_of key v in
            Ok { s with Schedule.chunk_size }
        | "sched" ->
            let* sched = Schedule.sched_of_string v in
            Ok { s with Schedule.sched }
        | "incr" -> (
            match float_of_string_opt v with
            | Some incremental_threshold ->
                Ok { s with Schedule.incremental_threshold }
            | None ->
                Error (Printf.sprintf "schedule: %s is not a float: %S" key v))
        | _ -> Error (Printf.sprintf "schedule: unknown key %S" key))
      (Ok Schedule.default) fields
  in
  Schedule.validate s

(* ---------------- one configuration ---------------- *)

type config = {
  app : app;
  spec : Graph_case.spec;
  schedule : Schedule.t;
  workers : int;
  variant : variant;
}

let repro_line ?(chaos = false) ~seed config =
  Printf.sprintf
    "check_runner --seed %d --app %s --graph '%s' --workers %d --schedule '%s'%s%s"
    seed (app_to_string config.app)
    (Graph_case.to_string config.spec)
    config.workers
    (schedule_to_string config.schedule)
    (variant_to_flags config.variant)
    (if chaos then " --chaos" else "")

(* A case prepared under one variant: the transformed edge list plus the
   handles every (app, schedule, workers) point over it shares. Handles
   cache the transpose and compressed forms, so a sweep of hundreds of
   schedules pays each conversion once instead of once per run. *)
type prepared = {
  p_case : Graph_case.t;
  p_directed : Handle.t;
  p_symmetric : Handle.t Lazy.t; (* k-core / set cover *)
}

let prepare ?(variant = default_variant) (case : Graph_case.t) =
  let* case =
    if variant.reorder = Reorder.Identity then Ok case
    else
      let csr = Csr.of_edge_list case.Graph_case.el in
      let* r =
        Reorder.of_kind variant.reorder ~csr ~coords:case.Graph_case.coords
      in
      Ok
        {
          case with
          Graph_case.el = Reorder.apply_edge_list r case.Graph_case.el;
          coords = Option.map (Reorder.apply_coords r) case.Graph_case.coords;
        }
  in
  let csr = Csr.of_edge_list case.Graph_case.el in
  let* csr =
    if not variant.bin_roundtrip then Ok csr
    else
      (* Save, reload, and require the loaded graph to be identical —
         then run the apps on the loaded copy, so a subtle codec bug also
         has to survive the oracles. *)
      let path = Filename.temp_file "graphbin_check" ".bin" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          match
            Graph_bin.save path ~layout:variant.layout csr;
            Graph_bin.load_csr path
          with
          | loaded ->
              if Csr.to_edge_list loaded = Csr.to_edge_list csr then Ok loaded
              else Error "graph_bin round-trip changed the graph"
          | exception exn ->
              Error ("graph_bin round-trip: " ^ Printexc.to_string exn))
  in
  Ok
    {
      p_case = case;
      p_directed = Handle.create ~kind:variant.layout csr;
      p_symmetric =
        lazy
          (Handle.of_edge_list ~kind:variant.layout
             (Edge_list.symmetrized case.Graph_case.el));
    }

(* Run one (app, graph, schedule) point on [pool] and judge the result.
   Engine exceptions are failures like any mismatch — a schedule that
   crashes is as broken as one that returns wrong distances, and both
   should shrink. *)
let run_prepared ?(oracle = Oracle.default) ~pool app prepared schedule =
  match Schedule.validate schedule with
  | Error msg -> Error ("invalid schedule: " ^ msg)
  | Ok schedule -> (
      let case = prepared.p_case in
      let judge () =
        match app with
        | Sssp | Wbfs | Ppsp | Astar -> (
            let handle = prepared.p_directed in
            let graph = Handle.csr handle in
            let n = Csr.num_vertices graph in
            let source = 0 and target = n - 1 in
            match app with
            | Sssp ->
                let r =
                  Algorithms.Sssp_delta.run ~pool ~graph ~handle ~schedule
                    ~source ()
                in
                oracle.Oracle.sssp graph ~source r.Algorithms.Sssp_delta.dist
            | Wbfs ->
                let r =
                  Algorithms.Wbfs.run ~pool ~graph ~handle ~schedule ~source ()
                in
                oracle.Oracle.sssp graph ~source r.Algorithms.Sssp_delta.dist
            | Ppsp ->
                let r =
                  Algorithms.Ppsp.run ~pool ~graph ~handle ~schedule ~source
                    ~target ()
                in
                oracle.Oracle.ppsp graph ~source ~target
                  r.Algorithms.Ppsp.distance
            | Astar -> (
                match case.Graph_case.coords with
                | None -> Error "astar requires a graph with coordinates"
                | Some coords ->
                    let r =
                      Algorithms.Astar.run ~pool ~graph ~coords ~handle
                        ~schedule ~source ~target ()
                    in
                    oracle.Oracle.ppsp graph ~source ~target
                      r.Algorithms.Astar.distance)
            | Kcore | Setcover -> assert false)
        | Kcore ->
            let handle = Lazy.force prepared.p_symmetric in
            let graph = Handle.csr handle in
            let r = Algorithms.Kcore.run ~pool ~graph ~handle ~schedule () in
            oracle.Oracle.kcore graph r.Algorithms.Kcore.coreness
        | Setcover ->
            let handle = Lazy.force prepared.p_symmetric in
            let graph = Handle.csr handle in
            let r = Algorithms.Setcover.run ~pool ~graph ~handle ~schedule () in
            oracle.Oracle.setcover graph r
      in
      match judge () with
      | result -> result
      | exception exn -> Error ("exception: " ^ Printexc.to_string exn))

let run_one ?oracle ?variant ~pool app (case : Graph_case.t) schedule =
  match prepare ?variant case with
  | Error msg -> Error ("prepare: " ^ msg)
  | Ok prepared -> run_prepared ?oracle ~pool app prepared schedule

(* ---------------- shrinking ---------------- *)

let coords_list coords =
  List.init (Coords.num_vertices coords) (fun v ->
      (Coords.x coords v, Coords.y coords v))

let explicit_spec ~num_vertices ~coords edges =
  Graph_case.Explicit { num_vertices; edges = Array.to_list edges; coords }

(* ddmin over the edge array: delete complements/chunks while the failure
   persists, then trim unused trailing vertices. [check] re-runs the full
   app-vs-oracle judgement, so whatever property failed is the property
   being preserved. Probe count is bounded; each probe is one app run on
   an ever-smaller graph. *)
let shrink ~check (case : Graph_case.t) =
  let coords = Option.map coords_list case.Graph_case.coords in
  let num_vertices = case.Graph_case.el.Edge_list.num_vertices in
  let to_spec = explicit_spec ~num_vertices ~coords in
  let probes = ref 0 in
  let max_probes = 400 in
  let still_fails edges =
    incr probes;
    !probes <= max_probes && check (Graph_case.build (to_spec edges))
  in
  let edges =
    Array.map
      (fun e -> (e.Edge_list.src, e.Edge_list.dst, e.Edge_list.weight))
      case.Graph_case.el.Edge_list.edges
  in
  let rec ddmin edges granularity =
    let len = Array.length edges in
    if len <= 1 || granularity > len then edges
    else begin
      let chunk = (len + granularity - 1) / granularity in
      let complements =
        List.init granularity (fun i ->
            let lo = i * chunk and hi = min len ((i + 1) * chunk) in
            Array.append (Array.sub edges 0 lo)
              (Array.sub edges hi (len - hi)))
      in
      match List.find_opt still_fails complements with
      | Some smaller -> ddmin smaller (max 2 (granularity - 1))
      | None ->
          if granularity >= len then edges
          else ddmin edges (min len (2 * granularity))
    end
  in
  let edges =
    if Array.length edges > 0 && still_fails [||] then [||]
    else ddmin edges 2
  in
  (* Trim vertices past the last edge endpoint (A* keeps its coordinate
     prefix). [check] guards the trim: source/target are derived from n,
     so shrinking n changes the query, and the failure must survive it. *)
  let used =
    Array.fold_left (fun acc (s, d, _) -> max acc (max s d)) (-1) edges + 1
  in
  let spec =
    if used >= 1 && used < num_vertices then begin
      let trimmed =
        Graph_case.Explicit
          {
            num_vertices = used;
            edges = Array.to_list edges;
            coords =
              Option.map (fun cs -> List.filteri (fun i _ -> i < used) cs)
                coords;
          }
      in
      incr probes;
      if check (Graph_case.build trimmed) then trimmed else to_spec edges
    end
    else to_spec edges
  in
  if spec = case.Graph_case.spec then None else Some spec

(* ---------------- the sweep ---------------- *)

type failure = {
  config : config;
  message : string;
  shrunk : Graph_case.spec option;
  repro : string;
}

type summary = {
  configs_run : int;
  per_app : (app * int) list;
  failures : failure list;
  elapsed_seconds : float;
  budget_exhausted : bool;
  race_findings : int;
}

let default_specs ~seed =
  [
    Graph_case.Random { seed; n = 48; m = 200; max_w = 12 };
    Graph_case.Random { seed = seed + 1; n = 64; m = 120; max_w = 5 };
    Graph_case.Dup_edges { seed = seed + 2; n = 24; m = 60; max_w = 9 };
    Graph_case.Road { seed = seed + 3; rows = 5; cols = 6 };
    Graph_case.Road { seed = seed + 4; rows = 3; cols = 3 };
    Graph_case.Path 13;
    Graph_case.Cycle 9;
    Graph_case.Star 16;
    Graph_case.Complete 8;
    Graph_case.Edgeless 6;
    Graph_case.Edgeless 1;
    Graph_case.Self_loops 8;
  ]

let strategies = function
  | Kcore ->
      [
        Schedule.Eager_with_fusion; Schedule.Eager_no_fusion; Schedule.Lazy;
        Schedule.Lazy_constant_sum;
      ]
  | Sssp | Wbfs | Ppsp | Astar | Setcover ->
      [ Schedule.Eager_with_fusion; Schedule.Eager_no_fusion; Schedule.Lazy ]

let deltas app graph =
  match app with
  (* wBFS pins Δ = 1 itself; k-core and set cover tolerate no coarsening. *)
  | Wbfs | Kcore | Setcover -> [ 1 ]
  | Sssp | Ppsp | Astar ->
      (* 1, 2, 8 plus Δ* — the max edge weight, a stand-in for the tuned
         Δ (road schedules in the paper sit near the weight scale). *)
      List.sort_uniq compare [ 1; 2; 8; max 1 (Csr.max_weight graph) ]

let traversals app strategy =
  match (app, strategy) with
  | (Sssp | Wbfs | Ppsp | Astar), (Schedule.Lazy | Schedule.Lazy_constant_sum)
    ->
      [ Schedule.Sparse_push; Schedule.Dense_pull; Schedule.Hybrid ]
  (* k-core and set cover drive push-only kernels (no transpose plumbed). *)
  | _ -> [ Schedule.Sparse_push ]

let bucket_counts = function
  | Schedule.Lazy | Schedule.Lazy_constant_sum -> [ 32; 512 ]
  | Schedule.Eager_with_fusion | Schedule.Eager_no_fusion -> [ 128 ]

let fusion_thresholds = function
  | Schedule.Eager_with_fusion -> [ 1; 1000 ]
  | _ -> [ 1000 ]

let scheds =
  [ None; Some Pool.Static; Some Pool.Dynamic; Some Pool.Guided ]

(* The systematic cross-product for one (app, graph) pair, plus a few
   Autotune.Search_space samples so the corners the grid leaves out
   (huge Δ, odd chunk sizes) still get visited. *)
let schedules ~seed app graph =
  let grid =
    List.concat_map
      (fun strategy ->
        List.concat_map
          (fun delta ->
            List.concat_map
              (fun traversal ->
                List.concat_map
                  (fun num_open_buckets ->
                    List.concat_map
                      (fun fusion_threshold ->
                        List.map
                          (fun sched ->
                            {
                              Schedule.default with
                              Schedule.strategy;
                              delta;
                              traversal;
                              num_open_buckets;
                              fusion_threshold;
                              sched;
                            })
                          scheds)
                      (fusion_thresholds strategy))
                  (bucket_counts strategy))
              (traversals app strategy))
          (deltas app graph))
      (strategies app)
  in
  let rng = Rng.create (seed * 31 + Hashtbl.hash (app_to_string app)) in
  let space =
    {
      Autotune.Search_space.default with
      Autotune.Search_space.strategies = strategies app;
    }
  in
  let sampled =
    List.init 6 (fun _ -> Autotune.Search_space.random space rng)
    |> List.filter_map (fun s ->
           (* The sampler does not know app constraints: clamp Δ for the
              Δ-less apps and direction for the push-only ones. *)
           let s =
             match app with
             | Wbfs | Kcore | Setcover -> { s with Schedule.delta = 1 }
             | _ -> s
           in
           let s =
             if List.mem s.Schedule.traversal (traversals app s.Schedule.strategy)
             then s
             else { s with Schedule.traversal = Schedule.Sparse_push }
           in
           match Schedule.validate s with Ok s -> Some s | Error _ -> None)
  in
  grid @ sampled

exception Stop

let run ?oracle ?(apps = all_apps) ?specs ?(variants = default_variants)
    ?(workers = [ 1; 2; 4 ]) ?(budget = 60.) ?(seed = 0) ?(max_failures = 5)
    ?(chaos = false) ?(race = false) ?(log = fun _ -> ()) () =
  let specs =
    match specs with Some s -> s | None -> default_specs ~seed
  in
  let variants = if variants = [] then [ default_variant ] else variants in
  let workers = List.sort_uniq compare workers in
  if chaos then Parallel.Chaos.enable ~seed;
  if race then begin
    Parallel.Race.clear ();
    Parallel.Race.enable ()
  end;
  let pools =
    List.map (fun w -> (w, Pool.create ~num_workers:w ())) workers
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (_, p) -> Pool.shutdown p) pools;
      if chaos then Parallel.Chaos.disable ();
      if race then Parallel.Race.disable ())
    (fun () ->
      let start = Unix.gettimeofday () in
      let elapsed () = Unix.gettimeofday () -. start in
      let configs_run = ref 0 in
      let per_app = Hashtbl.create 8 in
      let failures = ref [] in
      let budget_exhausted = ref false in
      let cases =
        List.map (fun spec -> (spec, Graph_case.build spec)) specs
      in
      (try
         (* Specs outer, then substrate variants, then apps: if the budget
            dies mid-sweep, every app has still run on the earlier graphs,
            and each (graph, variant) pays its transforms once for all the
            apps and schedules over it. *)
         List.iter
           (fun (spec, case) ->
             List.iter
               (fun variant ->
                 let record_failure config message shrunk =
                   let repro_spec =
                     Option.value ~default:config.spec shrunk
                   in
                   let repro =
                     repro_line ~chaos ~seed { config with spec = repro_spec }
                   in
                   log ("repro: " ^ repro);
                   failures := { config; message; shrunk; repro } :: !failures;
                   if List.length !failures >= max_failures then raise Stop
                 in
                 match prepare ~variant case with
                 | Error message ->
                     (* A substrate transform that fails is a finding in
                        its own right (codec or permutation bug). *)
                     log
                       (Printf.sprintf "FAIL prepare on %s%s: %s"
                          (Graph_case.to_string spec)
                          (variant_to_flags variant) message);
                     record_failure
                       {
                         app = List.hd apps;
                         spec;
                         schedule = Schedule.default;
                         workers = List.hd workers;
                         variant;
                       }
                       ("prepare: " ^ message) None
                 | Ok prepared ->
                     List.iter
                       (fun app ->
                         match (app, case.Graph_case.coords) with
                         | Astar, None -> ()
                         | _ ->
                             let graph = Handle.csr prepared.p_directed in
                             List.iter
                               (fun schedule ->
                                 List.iter
                                   (fun (w, pool) ->
                                     if elapsed () > budget then begin
                                       budget_exhausted := true;
                                       raise Stop
                                     end;
                                     incr configs_run;
                                     Hashtbl.replace per_app app
                                       (1
                                       + Option.value ~default:0
                                           (Hashtbl.find_opt per_app app));
                                     match
                                       run_prepared ?oracle ~pool app prepared
                                         schedule
                                     with
                                     | Ok () -> ()
                                     | Error message ->
                                         let config =
                                           {
                                             app;
                                             spec;
                                             schedule;
                                             workers = w;
                                             variant;
                                           }
                                         in
                                         log
                                           (Printf.sprintf "FAIL %s on %s%s: %s"
                                              (app_to_string app)
                                              (Graph_case.to_string spec)
                                              (variant_to_flags variant)
                                              message);
                                         (* Shrink probes re-apply the
                                            variant to each candidate, so
                                            the minimized case still fails
                                            under the same substrate. *)
                                         let check c =
                                           Result.is_error
                                             (run_one ?oracle ~variant ~pool
                                                app c schedule)
                                         in
                                         let shrunk = shrink ~check case in
                                         record_failure config message shrunk)
                                   pools)
                               (schedules ~seed app graph))
                       apps)
               variants)
           cases
       with Stop -> ());
      {
        configs_run = !configs_run;
        per_app =
          List.filter_map
            (fun app ->
              Option.map (fun n -> (app, n)) (Hashtbl.find_opt per_app app))
            all_apps;
        failures = List.rev !failures;
        elapsed_seconds = elapsed ();
        budget_exhausted = !budget_exhausted;
        race_findings = (if race then Parallel.Race.num_findings () else 0);
      })
