module Schedule = Ordered.Schedule
module Pool = Parallel.Pool
module Ast = Dsl.Ast

(* ---------------- bug injection ---------------- *)

type bug = No_bug | Wrong_weight

let bug_to_string = function No_bug -> "none" | Wrong_weight -> "wrong-weight"

let bug_of_string = function
  | "none" -> Ok No_bug
  | "wrong-weight" -> Ok Wrong_weight
  | s -> Error (Printf.sprintf "unknown bug %S (none|wrong-weight)" s)

(* The deliberately wrong lowering: inside every user function with a
   [weight : int] parameter, read the edge weight as [weight + 1]. The
   reference lane interprets the unmutated program, so any graph with a
   relaxable edge exposes the difference. *)
let rec bug_expr name (e : Ast.expr) =
  let desc =
    match e.Ast.desc with
    | Ast.Var v when v = name ->
        Ast.Binop
          (Ast.Add, e, { Ast.desc = Ast.Int_lit 1; pos = e.Ast.pos })
    | (Ast.Int_lit _ | Ast.Bool_lit _ | Ast.String_lit _ | Ast.Var _) as d -> d
    | Ast.Index (a, b) -> Ast.Index (bug_expr name a, bug_expr name b)
    | Ast.Binop (op, a, b) -> Ast.Binop (op, bug_expr name a, bug_expr name b)
    | Ast.Unop (op, a) -> Ast.Unop (op, bug_expr name a)
    | Ast.Call (f, args) -> Ast.Call (f, List.map (bug_expr name) args)
    | Ast.Method_call (recv, m, args) ->
        Ast.Method_call (bug_expr name recv, m, List.map (bug_expr name) args)
    | Ast.New_priority_queue p ->
        Ast.New_priority_queue
          { p with args = List.map (bug_expr name) p.args }
    | Ast.New_vertexset v -> Ast.New_vertexset { v with size = bug_expr name v.size }
  in
  { e with Ast.desc }

let rec bug_stmt name (s : Ast.stmt) =
  let sdesc =
    match s.Ast.sdesc with
    | Ast.S_var_decl (n, t, init) ->
        Ast.S_var_decl (n, t, Option.map (bug_expr name) init)
    | Ast.S_assign (n, e) -> Ast.S_assign (n, bug_expr name e)
    | Ast.S_index_assign (n, i, e) ->
        Ast.S_index_assign (n, bug_expr name i, bug_expr name e)
    | Ast.S_reduce_assign (rd, n, i, e) ->
        Ast.S_reduce_assign (rd, n, bug_expr name i, bug_expr name e)
    | Ast.S_expr e -> Ast.S_expr (bug_expr name e)
    | Ast.S_while (c, body) ->
        Ast.S_while (bug_expr name c, List.map (bug_stmt name) body)
    | Ast.S_if (c, t, f) ->
        Ast.S_if
          (bug_expr name c, List.map (bug_stmt name) t, List.map (bug_stmt name) f)
    | Ast.S_delete _ as d -> d
  in
  { s with Ast.sdesc }

let apply_bug bug (program : Ast.program) =
  match bug with
  | No_bug -> program
  | Wrong_weight ->
      let funcs =
        List.map
          (fun (f : Ast.func_decl) ->
            match List.assoc_opt "weight" f.Ast.params with
            | Some Ast.T_int ->
                { f with Ast.body = List.map (bug_stmt "weight") f.Ast.body }
            | _ -> f)
          program.Ast.funcs
      in
      { program with Ast.funcs }

(* ---------------- toolchain ---------------- *)

type toolchain = {
  compiler : string;
  cache : (string, (string, string) result) Hashtbl.t;
      (* generated source digest -> binary path (or compile error) *)
}

let detect_toolchain () =
  let probe c = Sys.command (Printf.sprintf "%s --version >/dev/null 2>&1" c) = 0 in
  match List.find_opt probe [ "g++"; "c++"; "clang++" ] with
  | Some compiler -> Some { compiler; cache = Hashtbl.create 16 }
  | None -> None

let toolchain_name t = t.compiler

let compile_cached t source =
  let key = Digest.string source in
  match Hashtbl.find_opt t.cache key with
  | Some r -> r
  | None ->
      let cpp = Filename.temp_file "dsl_case" ".cpp" in
      let bin = Filename.temp_file "dsl_case" ".bin" in
      let r =
        Out_channel.with_open_text cpp (fun oc ->
            Out_channel.output_string oc source);
        let log = cpp ^ ".log" in
        let cmd =
          Printf.sprintf "%s -O1 -std=c++17 -o %s %s > %s 2>&1"
            (Filename.quote t.compiler) (Filename.quote bin) (Filename.quote cpp)
            (Filename.quote log)
        in
        if Sys.command cmd = 0 then Ok bin
        else
          let err =
            try In_channel.with_open_text log In_channel.input_all
            with Sys_error _ -> ""
          in
          Error
            (Printf.sprintf "generated C++ does not compile (%s): %s" t.compiler
               (String.sub err 0 (min 400 (String.length err))))
      in
      Hashtbl.replace t.cache key r;
      r

(* Run a compiled case and parse the out/vec protocol back. Exit status 2
   means "lane unavailable" (unmatched program or unsupported construct)
   and is reported as [Ok None]. *)
let run_binary bin args =
  let cmd =
    String.concat " " (List.map Filename.quote (bin :: args)) ^ " 2>/dev/null"
  in
  let ic = Unix.open_process_in cmd in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  let lines = List.rev !lines in
  match status with
  | Unix.WEXITED 0 ->
      let printed = ref [] and vectors = ref [] in
      let bad = ref None in
      List.iter
        (fun line ->
          match String.index_opt line ' ' with
          | Some i when String.sub line 0 i = "out" ->
              printed :=
                String.sub line (i + 1) (String.length line - i - 1) :: !printed
          | Some i when String.sub line 0 i = "vec" -> (
              let rest =
                String.sub line (i + 1) (String.length line - i - 1)
              in
              match String.split_on_char ' ' rest with
              | name :: values -> (
                  match
                    List.map int_of_string values |> Array.of_list
                  with
                  | arr -> vectors := (name, arr) :: !vectors
                  | exception Failure _ ->
                      bad := Some ("unparseable vec line: " ^ line))
              | [] -> bad := Some ("empty vec line: " ^ line))
          | _ -> bad := Some ("unrecognized output line: " ^ line))
        lines;
      (match !bad with
      | Some msg -> Error msg
      | None ->
          Ok (Some (List.rev !printed, List.sort compare (List.rev !vectors))))
  | Unix.WEXITED 2 -> Ok None
  | Unix.WEXITED n -> Error (Printf.sprintf "compiled case exited with %d" n)
  | Unix.WSIGNALED n | Unix.WSTOPPED n ->
      Error (Printf.sprintf "compiled case killed by signal %d" n)

(* ---------------- lane comparison ---------------- *)

let compare_results ~lane ~compare_vectors (ref_printed, ref_vectors)
    (got_printed, got_vectors) =
  if ref_printed <> got_printed then
    Error
      (Printf.sprintf "%s lane printed [%s], reference printed [%s]" lane
         (String.concat "; " got_printed)
         (String.concat "; " ref_printed))
  else if not compare_vectors then Ok ()
  else
    let rec go a b =
      match (a, b) with
      | [], [] -> Ok ()
      | (n, _) :: _, [] | [], (n, _) :: _ ->
          Error (Printf.sprintf "%s lane: vector %s missing in one lane" lane n)
      | (n1, v1) :: rest1, (n2, v2) :: rest2 ->
          if n1 <> n2 then
            Error
              (Printf.sprintf "%s lane: vector name mismatch %s vs %s" lane n1
                 n2)
          else if v1 <> v2 then begin
            let i = ref 0 in
            while !i < Array.length v1 && v1.(!i) = v2.(!i) do
              incr i
            done;
            Error
              (Printf.sprintf
                 "%s lane: %s[%d] = %d, reference says %d (graph has %d \
                  vertices)"
                 lane n1 !i
                 (if !i < Array.length v2 then v2.(!i) else -1)
                 (if !i < Array.length v1 then v1.(!i) else -1)
                 (Array.length v1))
          end
          else go rest1 rest2
    in
    go ref_vectors got_vectors

(* ---------------- one configuration ---------------- *)

type config = {
  spec : Dsl_case.spec;
  graph : Graph_case.spec;
  schedule : Schedule.t;
  workers : int;
  bug : bug;
}

let repro_line ?(chaos = false) ?(race = false) ~seed config =
  Printf.sprintf
    "check_runner --dsl --program '%s' --graph '%s' --schedule '%s' \
     --workers %d --seed %d%s%s%s"
    (Dsl_case.to_string config.spec)
    (Graph_case.to_string config.graph)
    (Sweep.schedule_to_string config.schedule)
    config.workers seed
    (if config.bug = No_bug then "" else " --bug " ^ bug_to_string config.bug)
    (if chaos then " --chaos" else "")
    (if race then " --race" else "")

let with_graph_file (case : Graph_case.t) f =
  let path = Filename.temp_file "dsl_graph" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Graphs.Graph_io.write_edge_list path case.Graph_case.el;
      f path)

let lower_case ?(bug = No_bug) spec schedule =
  let source = Dsl_case.render ~schedule spec in
  match Dsl.Parser.parse_string source with
  | exception Dsl.Parser.Error (pos, msg) ->
      Error (Format.asprintf "%a: parse error: %s" Dsl.Pos.pp pos msg)
  | program -> (
      match Dsl.Lower.lower (apply_bug bug program) with
      | Error e -> Error e
      | Ok lowered -> Dsl.Lower.with_loop_schedule lowered schedule)

let interp_result lowered ~pool ~argv ~transform =
  match Dsl.Interp.run lowered ~pool ~argv ~transform () with
  | r -> Ok (r.Dsl.Interp.printed, r.Dsl.Interp.vectors)
  | exception Dsl.Interp.Runtime_error (pos, msg) ->
      Error (Format.asprintf "runtime error at %a: %s" Dsl.Pos.pp pos msg)
  | exception Invalid_argument msg -> Error ("invalid argument: " ^ msg)

(* The target vertex for the "stop" gene: the last vertex, so stopping
   early is actually observable on path-shaped graphs. *)
let target_of (case : Graph_case.t) =
  max 0 (Graphs.Edge_list.(case.Graph_case.el.num_vertices) - 1)

let run_one ?(bug = No_bug) ?toolchain ~pool ~ref_pool spec
    (case : Graph_case.t) schedule =
  let ( let* ) = Result.bind in
  (* The reference lane interprets the unmutated program; the schedule
     only matters to the engine lane, so lower the reference at the
     default point. *)
  let* reference_lowered = lower_case spec Schedule.default in
  let* lowered = lower_case ~bug spec schedule in
  with_graph_file case (fun path ->
      let argv = Dsl_case.argv ~graph_file:path ~target:(target_of case) spec in
      let* reference =
        Result.map_error
          (fun e -> "reference lane: " ^ e)
          (interp_result reference_lowered ~pool:ref_pool ~argv ~transform:false)
      in
      let compare_vectors = Dsl_case.compare_vectors spec in
      let* engine =
        Result.map_error
          (fun e -> "engine lane: " ^ e)
          (interp_result lowered ~pool ~argv ~transform:true)
      in
      let* () = compare_results ~lane:"engine" ~compare_vectors reference engine in
      match toolchain with
      | None -> Ok ()
      | Some t -> (
          let source = Dsl.Codegen_cpp.generate lowered in
          let* bin = compile_cached t source in
          let args = Array.to_list argv |> List.tl in
          let* out = run_binary bin args in
          match out with
          | None -> Ok () (* compiled lane unavailable for this program *)
          | Some got ->
              compare_results ~lane:"compiled" ~compare_vectors reference got))

(* ---------------- shrinking ---------------- *)

(* ddmin over the gene list: greedily drop genes while the configuration
   keeps failing. The skeleton is not shrinkable — it IS the minimal
   §5.2 pattern. *)
let shrink_program ~check (spec : Dsl_case.spec) =
  let rec go spec =
    let step =
      List.find_map
        (fun gene ->
          let candidate =
            {
              spec with
              Dsl_case.genes = List.filter (( <> ) gene) spec.Dsl_case.genes;
            }
          in
          if check candidate then Some candidate else None)
        spec.Dsl_case.genes
    in
    match step with Some smaller -> go smaller | None -> spec
  in
  let smallest = go spec in
  if smallest = spec then None else Some smallest

(* ---------------- the sweep ---------------- *)

type failure = {
  config : config;
  lane : string;
  message : string;
  shrunk_program : Dsl_case.spec option;
  shrunk_graph : Graph_case.spec option;
  repro : string;
}

type summary = {
  programs : int;
  configs_run : int;
  compiled_runs : int;
  toolchain : string option;
  failures : failure list;
  elapsed_seconds : float;
  budget_exhausted : bool;
  race_findings : int;
}

let default_programs ~seed = List.init 6 (Dsl_case.generate ~seed)

let default_graphs ~seed =
  [
    Graph_case.Random { seed; n = 24; m = 96; max_w = 8 };
    Graph_case.Road { seed = seed + 1; rows = 4; cols = 5 };
    Graph_case.Path 12;
    Graph_case.Star 8;
    Graph_case.Dup_edges { seed = seed + 2; n = 10; m = 30; max_w = 5 };
    Graph_case.Self_loops 6;
    Graph_case.Edgeless 3;
  ]

let deltas = function
  | Dsl_case.Sum_peel -> [ 1 ] (* coarsening is off for the peel queue *)
  | Dsl_case.Min_relax | Dsl_case.Max_relax -> [ 1; 2; 8 ]

let bucket_counts = function
  | Schedule.Lazy | Schedule.Lazy_constant_sum -> [ 32; 512 ]
  | Schedule.Eager_with_fusion | Schedule.Eager_no_fusion -> [ 128 ]

let fusion_thresholds = function
  | Schedule.Eager_with_fusion -> [ 1; 1000 ]
  | _ -> [ 1000 ]

let scheds = [ None; Some Pool.Dynamic ]

(* The grid for one program. [rep] marks the representative point of each
   (strategy, traversal, delta) cell — the subset the compiled lane
   builds, bounding compile time while still covering every emitted
   backend shape. *)
let grid spec =
  List.concat_map
    (fun strategy ->
      List.concat_map
        (fun traversal ->
          List.concat_map
            (fun delta ->
              List.concat_map
                (fun num_open_buckets ->
                  List.concat_map
                    (fun fusion_threshold ->
                      List.map
                        (fun sched ->
                          let s =
                            {
                              Schedule.default with
                              Schedule.strategy;
                              delta;
                              traversal;
                              num_open_buckets;
                              fusion_threshold;
                              sched;
                            }
                          in
                          let rep =
                            num_open_buckets
                            = List.hd (bucket_counts strategy)
                            && fusion_threshold
                               = List.hd (fusion_thresholds strategy)
                            && sched = List.hd scheds
                          in
                          (s, rep))
                        scheds)
                    (fusion_thresholds strategy))
                (bucket_counts strategy))
            (deltas spec.Dsl_case.family))
        (Dsl_case.traversals strategy))
    (Dsl_case.strategies spec.Dsl_case.family)

exception Stop

let run ?programs ?graphs ?(workers = [ 1; 2; 4 ]) ?(budget = 60.) ?(seed = 0)
    ?(max_failures = 5) ?(chaos = false) ?(race = false) ?(bug = No_bug)
    ?compiled ?(log = fun _ -> ()) () =
  let programs =
    match programs with Some p -> p | None -> default_programs ~seed
  in
  let graphs = match graphs with Some g -> g | None -> default_graphs ~seed in
  let workers = List.sort_uniq compare workers in
  let toolchain =
    match compiled with
    | Some false -> None
    | Some true | None -> detect_toolchain ()
  in
  (match toolchain with
  | Some t -> log (Printf.sprintf "compiled lane: %s" (toolchain_name t))
  | None -> log "compiled lane: no C++ toolchain detected, skipped");
  if chaos then Parallel.Chaos.enable ~seed;
  if race then begin
    Parallel.Race.clear ();
    Parallel.Race.enable ()
  end;
  let pools = List.map (fun w -> (w, Pool.create ~num_workers:w ())) workers in
  let ref_pool = Pool.create ~num_workers:1 () in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (_, p) -> Pool.shutdown p) pools;
      Pool.shutdown ref_pool;
      if chaos then Parallel.Chaos.disable ();
      if race then Parallel.Race.disable ())
    (fun () ->
      let start = Unix.gettimeofday () in
      let elapsed () = Unix.gettimeofday () -. start in
      let configs_run = ref 0 in
      let compiled_runs = ref 0 in
      let failures = ref [] in
      let budget_exhausted = ref false in
      let cases = List.map (fun g -> (g, Graph_case.build g)) graphs in
      (try
         List.iter
           (fun spec ->
             List.iter
               (fun (gspec, case) ->
                 List.iter
                   (fun (schedule, rep) ->
                     List.iter
                       (fun (w, pool) ->
                         if elapsed () > budget then begin
                           budget_exhausted := true;
                           raise Stop
                         end;
                         (* The compiled lane builds one binary per
                            (program, schedule) cell; restrict it to the
                            representative point on the first worker
                            count. *)
                         let toolchain =
                           if rep && w = List.hd workers then toolchain
                           else None
                         in
                         incr configs_run;
                         if toolchain <> None then incr compiled_runs;
                         match
                           run_one ~bug ?toolchain ~pool ~ref_pool spec case
                             schedule
                         with
                         | Ok () -> ()
                         | Error message ->
                             let config =
                               { spec; graph = gspec; schedule; workers = w; bug }
                             in
                             let lane =
                               if String.length message >= 8
                                  && String.sub message 0 8 = "compiled"
                               then "compiled"
                               else if
                                 String.length message >= 6
                                 && String.sub message 0 6 = "engine"
                               then "engine"
                               else "lower"
                             in
                             log
                               (Printf.sprintf "FAIL %s on %s [%s]: %s"
                                  (Dsl_case.to_string spec)
                                  (Graph_case.to_string gspec)
                                  (Sweep.schedule_to_string schedule)
                                  message);
                             let still_fails ~spec ~case =
                               Result.is_error
                                 (run_one ~bug ?toolchain ~pool ~ref_pool spec
                                    case schedule)
                             in
                             let shrunk_program =
                               shrink_program
                                 ~check:(fun s -> still_fails ~spec:s ~case)
                                 spec
                             in
                             let min_spec =
                               Option.value ~default:spec shrunk_program
                             in
                             let shrunk_graph =
                               Sweep.shrink
                                 ~check:(fun c ->
                                   still_fails ~spec:min_spec ~case:c)
                                 case
                             in
                             let repro =
                               repro_line ~chaos ~race ~seed
                                 {
                                   config with
                                   spec = min_spec;
                                   graph =
                                     Option.value ~default:gspec shrunk_graph;
                                 }
                             in
                             log ("repro: " ^ repro);
                             failures :=
                               {
                                 config;
                                 lane;
                                 message;
                                 shrunk_program;
                                 shrunk_graph;
                                 repro;
                               }
                               :: !failures;
                             if List.length !failures >= max_failures then
                               raise Stop)
                       pools)
                   (grid spec))
               cases)
           programs
       with Stop -> ());
      {
        programs = List.length programs;
        configs_run = !configs_run;
        compiled_runs = !compiled_runs;
        toolchain = Option.map toolchain_name toolchain;
        failures = List.rev !failures;
        elapsed_seconds = elapsed ();
        budget_exhausted = !budget_exhausted;
        race_findings = (if race then Parallel.Race.num_findings () else 0);
      })
