(** The DSL differential sweep: generated programs ({!Dsl_case}) run
    through three lanes and compared lane-against-lane.

    - {e reference}: the interpreter with the §5.2 loop replacement
      disabled ([Interp.run ~transform:false]) on a one-worker pool — an
      engine-free, schedule-free executable semantics;
    - {e engine}: the interpreter with the transformation on, across the
      schedule grid ({!Dsl_case.strategies} × Δ × traversal × sched) and
      worker counts, re-scheduled per point with
      {!Dsl.Lower.with_loop_schedule};
    - {e compiled}: where a C++ toolchain is detected, the
      {!Dsl.Codegen_cpp} translation of representative grid points,
      built and executed out of process, its [out]/[vec] protocol parsed
      back and compared against the reference.

    A mismatch is shrunk twice — ddmin over the program's gene list, then
    {!Sweep.shrink} over the graph — and reported with a paste-able
    [check_runner --dsl] repro line. [bug] grafts a deliberately wrong
    lowering into the engine and compiled lanes (the reference stays
    honest), which is how the test suite proves the sweep detects and
    minimizes injected miscompilations. *)

type bug =
  | No_bug
  | Wrong_weight
      (** Engine/compiled lanes see every [weight] use in user functions
          as [weight + 1] — a miscompiled edge-weight load. No-op for the
          unweighted {!Dsl_case.Sum_peel} family. *)

val bug_to_string : bug -> string
val bug_of_string : string -> (bug, string) result

(** A detected C++ toolchain: the compiler command and a per-process
    cache of already-built binaries keyed by generated source. *)
type toolchain

(** Probes [g++], then [c++], then [clang++]. *)
val detect_toolchain : unit -> toolchain option

val toolchain_name : toolchain -> string

type config = {
  spec : Dsl_case.spec;
  graph : Graph_case.spec;
  schedule : Ordered.Schedule.t;
  workers : int;
  bug : bug;
}

(** [repro_line ~seed config] is the [check_runner --dsl] invocation that
    re-runs exactly [config]. *)
val repro_line : ?chaos:bool -> ?race:bool -> seed:int -> config -> string

(** [run_one ~pool ~ref_pool spec case schedule] renders, lowers, and
    compares the lanes for one configuration. [pool] drives the engine
    lane, [ref_pool] (one worker) the reference. The compiled lane runs
    only when [toolchain] is supplied; its unavailability exits (status
    2: unmatched program, unsupported construct) are skips, not
    failures. Lowering errors, runtime errors, and lane mismatches are
    all [Error]. *)
val run_one :
  ?bug:bug ->
  ?toolchain:toolchain ->
  pool:Parallel.Pool.t ->
  ref_pool:Parallel.Pool.t ->
  Dsl_case.spec ->
  Graph_case.t ->
  Ordered.Schedule.t ->
  (unit, string) result

type failure = {
  config : config;
  lane : string;  (** ["lower"], ["engine"], or ["compiled"]. *)
  message : string;
  shrunk_program : Dsl_case.spec option;
  shrunk_graph : Graph_case.spec option;
  repro : string;  (** Repro line for the shrunk configuration. *)
}

type summary = {
  programs : int;
  configs_run : int;
  compiled_runs : int;
  toolchain : string option;  (** [None] when no C++ compiler was found. *)
  failures : failure list;
  elapsed_seconds : float;
  budget_exhausted : bool;
  race_findings : int;
}

(** The default program stream for [seed]: {!Dsl_case.generate} 0..5. *)
val default_programs : seed:int -> Dsl_case.spec list

(** Small graphs — the sweep multiplies every program by the full grid,
    so cases stay tiny: a random multigraph, a road grid, a path, a
    star, duplicate edges, self-loops, and the edgeless degenerate. *)
val default_graphs : seed:int -> Graph_case.spec list

(** [run ()] sweeps programs × graphs × the schedule grid × [workers]
    under [budget] seconds, stopping after [max_failures]. [compiled]
    forces the compiled lane on or off (default: auto-detect). [chaos]
    and [race] behave as in {!Sweep.run}. *)
val run :
  ?programs:Dsl_case.spec list ->
  ?graphs:Graph_case.spec list ->
  ?workers:int list ->
  ?budget:float ->
  ?seed:int ->
  ?max_failures:int ->
  ?chaos:bool ->
  ?race:bool ->
  ?bug:bug ->
  ?compiled:bool ->
  ?log:(string -> unit) ->
  unit ->
  summary
