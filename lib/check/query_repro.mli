(** One service query as a reproducible [check_runner] command line.

    The slow-query log (lib/service, docs/OBSERVABILITY.md) attaches a
    line of the form

    {v check_runner --app ppsp --graph-file road.el --source 40
       --target 6399 --schedule 'strategy=eager_fusion,delta=2,...'
       --workers 2 v}

    to every record, so an offending query replays solo — same graph
    file, endpoints, schedule, and worker count — judged against the
    sequential oracles. {!of_line} accepts a pasted line (leading
    [check_runner]/[dune exec ... --] tokens are skipped; the schedule
    may be single-quoted), and {!run} executes it. A* replays without
    the server's ALT heuristic (h = 0 is plain PPSP — still exact, so
    the judgement is unchanged); k-core symmetrizes the loaded graph
    exactly like the server does. *)

type app = Ppsp | Astar | Widest | Kcore

val app_to_string : app -> string
val app_of_string : string -> (app, string) result

type t = {
  app : app;
  graph_file : string;  (** Edge-list text or GRAPHBIN (sniffed). *)
  symmetric : bool;  (** Symmetrize after load, as [serve --symmetric]. *)
  source : int;  (** The vertex, for [Kcore]. *)
  target : int;  (** Ignored by [Kcore]. *)
  schedule : Ordered.Schedule.t;
  workers : int;
}

val to_line : t -> string

(** [of_line line] parses a repro line; [Error] describes the first
    offending token. *)
val of_line : string -> (t, string) result

(** [run ?oracle r] loads the graph, runs the query on a fresh
    [r.workers]-worker pool, and judges the result ([Ok ()] = matches
    the oracle). IO and range problems come back as [Error]. *)
val run : ?oracle:Oracle.t -> t -> (unit, string) result
