(* Named, seeded, *printable* graph inputs for the differential sweep.

   Every case the sweep runs must round-trip through a compact string so
   failures come with a repro line the operator can paste back into
   [check_runner --graph]. Shrunk counterexamples use the [Explicit]
   constructor, whose string carries the full edge list (and, for A-star,
   the coordinates) — by construction shrunk graphs are tiny, so the
   verbosity is bounded. *)

module Rng = Support.Rng
module Edge_list = Graphs.Edge_list
module Coords = Graphs.Coords
module Generators = Graphs.Generators

type spec =
  | Random of { seed : int; n : int; m : int; max_w : int }
  | Dup_edges of { seed : int; n : int; m : int; max_w : int }
  | Road of { seed : int; rows : int; cols : int }
  | Path of int
  | Cycle of int
  | Star of int
  | Complete of int
  | Edgeless of int
  | Self_loops of int
  | Explicit of {
      num_vertices : int;
      edges : (int * int * int) list;
      coords : (float * float) list option;
    }

type t = {
  spec : spec;
  el : Edge_list.t;
  coords : Coords.t option;
}

(* Random multigraph: [m] independent (src, dst, weight) draws with
   self-loops and parallel edges allowed — the messiest input Edge_list
   admits, on purpose. *)
let random_edges rng ~n ~m ~max_w =
  Array.init m (fun _ ->
      {
        Edge_list.src = Rng.int rng n;
        dst = Rng.int rng n;
        weight = Rng.int_range rng 1 (max 1 max_w);
      })

let build spec =
  let el, coords =
    match spec with
    | Random { seed; n; m; max_w } ->
        let rng = Rng.create seed in
        (Edge_list.create ~num_vertices:n (random_edges rng ~n ~m ~max_w), None)
    | Dup_edges { seed; n; m; max_w } ->
        (* Every drawn edge appears twice with distinct weights. *)
        let rng = Rng.create seed in
        let base = random_edges rng ~n ~m ~max_w in
        let doubled =
          Array.concat
            [
              base;
              Array.map
                (fun e -> { e with Edge_list.weight = e.Edge_list.weight + 1 })
                base;
            ]
        in
        (Edge_list.create ~num_vertices:n doubled, None)
    | Road { seed; rows; cols } ->
        let rng = Rng.create seed in
        let el, coords = Generators.road_grid ~rng ~rows ~cols () in
        (el, Some coords)
    | Path n -> (Generators.path n, None)
    | Cycle n -> (Generators.cycle n, None)
    | Star n -> (Generators.star n, None)
    | Complete n -> (Generators.complete n, None)
    | Edgeless n -> (Edge_list.create ~num_vertices:n [||], None)
    | Self_loops n ->
        (* A cycle with a self-loop on every vertex: exercises both the
           loop-skipping paths and priority updates that change nothing. *)
        let loops =
          Array.init n (fun v -> { Edge_list.src = v; dst = v; weight = 2 })
        in
        ( Edge_list.create ~num_vertices:n
            (Array.append (Generators.cycle n).Edge_list.edges loops),
          None )
    | Explicit { num_vertices; edges; coords } ->
        ( Edge_list.create ~num_vertices
            (Array.of_list
               (List.map
                  (fun (src, dst, weight) -> { Edge_list.src; dst; weight })
                  edges)),
          Option.map
            (fun cs ->
              let xs = Array.of_list (List.map fst cs) in
              let ys = Array.of_list (List.map snd cs) in
              Coords.create xs ys)
            coords )
  in
  { spec; el; coords }

(* ---------------- spec <-> string ---------------- *)

let edges_to_string edges =
  String.concat "|"
    (List.map (fun (s, d, w) -> Printf.sprintf "%d-%dw%d" s d w) edges)

let coords_to_string cs =
  String.concat "|" (List.map (fun (x, y) -> Printf.sprintf "%g:%g" x y) cs)

let to_string = function
  | Random { seed; n; m; max_w } ->
      Printf.sprintf "random:seed=%d,n=%d,m=%d,w=%d" seed n m max_w
  | Dup_edges { seed; n; m; max_w } ->
      Printf.sprintf "dup:seed=%d,n=%d,m=%d,w=%d" seed n m max_w
  | Road { seed; rows; cols } ->
      Printf.sprintf "road:seed=%d,rows=%d,cols=%d" seed rows cols
  | Path n -> Printf.sprintf "path:%d" n
  | Cycle n -> Printf.sprintf "cycle:%d" n
  | Star n -> Printf.sprintf "star:%d" n
  | Complete n -> Printf.sprintf "complete:%d" n
  | Edgeless n -> Printf.sprintf "edgeless:%d" n
  | Self_loops n -> Printf.sprintf "selfloops:%d" n
  | Explicit { num_vertices; edges; coords } ->
      Printf.sprintf "explicit:n=%d,edges=%s%s" num_vertices
        (edges_to_string edges)
        (match coords with
        | None -> ""
        | Some cs -> ",coords=" ^ coords_to_string cs)

let ( let* ) = Result.bind

let parse_int what s =
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "graph spec: %s is not an integer: %S" what s)

let parse_fields body =
  List.fold_left
    (fun acc kv ->
      let* acc = acc in
      match String.index_opt kv '=' with
      | None -> Error (Printf.sprintf "graph spec: expected key=value, got %S" kv)
      | Some i ->
          Ok
            ((String.sub kv 0 i, String.sub kv (i + 1) (String.length kv - i - 1))
            :: acc))
    (Ok [])
    (String.split_on_char ',' body)

let field fields key =
  match List.assoc_opt key fields with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "graph spec: missing %s=" key)

let int_field fields key =
  let* v = field fields key in
  parse_int key v

let parse_edges s =
  if s = "" then Ok []
  else
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        match Scanf.sscanf_opt e "%d-%dw%d" (fun s d w -> (s, d, w)) with
        | Some edge -> Ok (edge :: acc)
        | None -> Error (Printf.sprintf "graph spec: bad edge %S" e))
      (Ok [])
      (String.split_on_char '|' s)
    |> Result.map List.rev

let parse_coords s =
  List.fold_left
    (fun acc c ->
      let* acc = acc in
      match Scanf.sscanf_opt c "%g:%g" (fun x y -> (x, y)) with
      | Some xy -> Ok (xy :: acc)
      | None -> Error (Printf.sprintf "graph spec: bad coordinate %S" c))
    (Ok [])
    (String.split_on_char '|' s)
  |> Result.map List.rev

let of_string s =
  let kind, body =
    match String.index_opt s ':' with
    | None -> (s, "")
    | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  in
  let sized make = Result.map make (parse_int "size" body) in
  match kind with
  | "path" -> sized (fun n -> Path n)
  | "cycle" -> sized (fun n -> Cycle n)
  | "star" -> sized (fun n -> Star n)
  | "complete" -> sized (fun n -> Complete n)
  | "edgeless" -> sized (fun n -> Edgeless n)
  | "selfloops" -> sized (fun n -> Self_loops n)
  | "random" | "dup" ->
      let* fields = parse_fields body in
      let* seed = int_field fields "seed" in
      let* n = int_field fields "n" in
      let* m = int_field fields "m" in
      let* max_w = int_field fields "w" in
      Ok
        (if kind = "random" then Random { seed; n; m; max_w }
         else Dup_edges { seed; n; m; max_w })
  | "road" ->
      let* fields = parse_fields body in
      let* seed = int_field fields "seed" in
      let* rows = int_field fields "rows" in
      let* cols = int_field fields "cols" in
      Ok (Road { seed; rows; cols })
  | "explicit" ->
      let* fields = parse_fields body in
      let* num_vertices = int_field fields "n" in
      let* edges =
        let* s = field fields "edges" in
        parse_edges s
      in
      let* coords =
        match List.assoc_opt "coords" fields with
        | None -> Ok None
        | Some s -> Result.map Option.some (parse_coords s)
      in
      Ok (Explicit { num_vertices; edges; coords })
  | _ -> Error (Printf.sprintf "graph spec: unknown kind %S" kind)
