module Schedule = Ordered.Schedule
module Rng = Support.Rng

type family = Min_relax | Max_relax | Sum_peel

let all_families = [ Min_relax; Max_relax; Sum_peel ]

let family_to_string = function
  | Min_relax -> "min"
  | Max_relax -> "max"
  | Sum_peel -> "peel"

let family_of_string = function
  | "min" -> Ok Min_relax
  | "max" -> Ok Max_relax
  | "peel" -> Ok Sum_peel
  | s -> Error (Printf.sprintf "unknown program family %S" s)

type spec = {
  family : family;
  genes : string list;
}

(* Every gene preserves termination (updates stay monotone) and
   schedule-independence of the observable results:
   - "tmp"      bind the candidate priority to a local before updating
   - "guard"    redundant comparison around the update (the operator
                already ignores non-improving values)
   - "threeary" the 3-ary update form whose middle argument is
                informational (Fig. 3)
   - "scale"    double the edge weight in the candidate (still positive)
   - "reach"    second vector, [reach[dst] min= src] — the min over
                in-neighbors that are ever relaxed, which is the set of
                vertices with finite priority in EVERY schedule, so the
                final vector is schedule-independent while exercising
                reduction assignments and the atomics contract
   - "stop"     ppsp-style stop vertex from argv[3] (vector comparison is
                disabled: non-finalized entries are schedule-dependent)
   - "print"    a print() after the loop, exercising the output protocol *)
let all_genes = function
  | Min_relax -> [ "tmp"; "guard"; "threeary"; "scale"; "reach"; "stop"; "print" ]
  | Max_relax -> [ "guard"; "threeary"; "reach"; "print" ]
  | Sum_peel -> [ "reach"; "print" ]

let has g spec = List.mem g spec.genes

let generate ~seed i =
  let family = List.nth all_families (i mod List.length all_families) in
  let rng = Rng.create ((seed * 131) + i) in
  let genes = List.filter (fun _ -> Rng.bool rng) (all_genes family) in
  { family; genes }

let to_string spec =
  family_to_string spec.family ^ ":" ^ String.concat "+" spec.genes

let of_string s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "program spec %S: expected family:genes" s)
  | Some i ->
      let ( let* ) = Result.bind in
      let* family = family_of_string (String.sub s 0 i) in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let genes =
        if rest = "" then []
        else String.split_on_char '+' rest |> List.map String.trim
      in
      let pool = all_genes family in
      let* () =
        List.fold_left
          (fun acc g ->
            let* () = acc in
            if List.mem g pool then Ok ()
            else
              Error
                (Printf.sprintf "unknown gene %S for family %s" g
                   (family_to_string family)))
          (Ok ()) genes
      in
      (* canonical order, deduplicated *)
      Ok { family; genes = List.filter (fun g -> List.mem g genes) pool }

let compare_vectors spec = not (has "stop" spec)

(* ---------------- rendering ---------------- *)

let render_schedule buf (s : Schedule.t) =
  (* The worker-sched axis (static/dynamic/guided) has no Schedule_lang
     directive; repro lines carry the full schedule string instead. *)
  Buffer.add_string buf "schedule:\n";
  Buffer.add_string buf
    (Printf.sprintf "program->configApplyPriorityUpdate(\"s1\", \"%s\")\n"
       (Schedule.strategy_to_string s.Schedule.strategy));
  Buffer.add_string buf
    (Printf.sprintf "       ->configApplyPriorityUpdateDelta(\"s1\", %d)\n"
       s.Schedule.delta);
  Buffer.add_string buf
    (Printf.sprintf "       ->configNumBuckets(\"s1\", %d)\n"
       s.Schedule.num_open_buckets);
  Buffer.add_string buf
    (Printf.sprintf "       ->configBucketFusionThreshold(\"s1\", %d)\n"
       s.Schedule.fusion_threshold);
  Buffer.add_string buf
    (Printf.sprintf "       ->configApplyDirection(\"s1\", \"%s\");\n"
       (Schedule.traversal_to_string s.Schedule.traversal))

let render ?(schedule = Schedule.default) spec =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "%% generated: %s" (to_string spec);
  line "element Vertex end";
  line "element Edge end";
  (match spec.family with
  | Min_relax | Max_relax ->
      line "const edges : edgeset{Edge}(Vertex, Vertex, int) = load(argv[1]);"
  | Sum_peel ->
      line "const edges : edgeset{Edge}(Vertex, Vertex) = symmetrize(load(argv[1]));");
  (match spec.family with
  | Min_relax -> line "const dist : vector{Vertex}(int) = INT_MAX;"
  | Max_relax -> line "const cap : vector{Vertex}(int) = 0;"
  | Sum_peel -> line "const degrees : vector{Vertex}(int) = edges.getOutDegrees();");
  if has "reach" spec then line "const reach : vector{Vertex}(int) = INT_MAX;";
  line "const pq : priority_queue{Vertex}(int);";
  line "";
  (* ---- user function ---- *)
  (match spec.family with
  | Min_relax ->
      line "func relax(src : Vertex, dst : Vertex, weight : int)";
      let cand =
        if has "scale" spec then "dist[src] + (weight * 2)"
        else "dist[src] + weight"
      in
      let value = if has "tmp" spec then "cand" else cand in
      if has "tmp" spec then line "    var cand : int = %s;" cand;
      if has "reach" spec then line "    reach[dst] min= src;";
      let update =
        if has "threeary" spec then
          Printf.sprintf "pq.updatePriorityMin(dst, dist[dst], %s);" value
        else Printf.sprintf "pq.updatePriorityMin(dst, %s);" value
      in
      if has "guard" spec then begin
        line "    if %s < dist[dst]" value;
        line "        %s" update;
        line "    end"
      end
      else line "    %s" update;
      line "end"
  | Max_relax ->
      line "func relax(src : Vertex, dst : Vertex, weight : int)";
      line "    var through : int = cap[src];";
      line "    if weight < through";
      line "        through = weight;";
      line "    end";
      if has "reach" spec then line "    reach[dst] min= src;";
      let update =
        if has "threeary" spec then "pq.updatePriorityMax(dst, cap[dst], through);"
        else "pq.updatePriorityMax(dst, through);"
      in
      if has "guard" spec then begin
        line "    if through > cap[dst]";
        line "        %s" update;
        line "    end"
      end
      else line "    %s" update;
      line "end"
  | Sum_peel ->
      line "func relax(src : Vertex, dst : Vertex)";
      line "    var k : int = pq.getCurrentPriority();";
      if has "reach" spec then line "    reach[dst] min= src;";
      line "    pq.updatePrioritySum(dst, -1, k);";
      line "end");
  line "";
  (* ---- main ---- *)
  line "func main()";
  (match spec.family with
  | Min_relax ->
      line "    var source : int = atoi(argv[2]);";
      if has "stop" spec then line "    var target : int = atoi(argv[3]);";
      line "    dist[source] = 0;";
      line
        "    pq = new priority_queue{Vertex}(int)(true, \"lower_first\", dist, \
         source);"
  | Max_relax ->
      line "    var source : int = atoi(argv[2]);";
      line "    cap[source] = edges.getMaxWeight();";
      line
        "    pq = new priority_queue{Vertex}(int)(true, \"higher_first\", cap, \
         source);"
  | Sum_peel ->
      line "    pq = new priority_queue{Vertex}(int)(false, \"lower_first\", degrees);");
  (if has "stop" spec then
     line
       "    while (pq.finished() == false) and (pq.finishedVertex(target) == \
        false)"
   else line "    while (pq.finished() == false)");
  line "        var bucket : vertexset{Vertex} = pq.dequeueReadySet();";
  line "        #s1# edges.from(bucket).applyUpdatePriority(relax);";
  line "        delete bucket;";
  line "    end";
  if has "stop" spec then line "    print(dist[target]);";
  if has "print" spec then begin
    match spec.family with
    | Min_relax -> line "    print(dist[source]);"
    | Max_relax -> line "    print(cap[source]);"
    | Sum_peel -> line "    print(degrees[0]);"
  end;
  line "end";
  line "";
  render_schedule buf schedule;
  Buffer.contents buf

(* Statement count of the rendered bodies, kept in sync with [render].
   The ordered while-loop counts as ONE statement: its dequeue / apply /
   delete body is the irreducible §5.2 pattern, not shrinkable
   structure. The forced-bug test bounds this after shrinking — the bare
   Min_relax skeleton is 5 (update; source; init; pq; loop). *)
let num_statements spec =
  let udf =
    match spec.family with
    | Min_relax ->
        1 (* update *)
        + (if has "tmp" spec then 1 else 0)
        + (if has "guard" spec then 1 else 0)
        + if has "reach" spec then 1 else 0
    | Max_relax ->
        3 (* through binding + min-clamp if + update *)
        + (if has "guard" spec then 1 else 0)
        + if has "reach" spec then 1 else 0
    | Sum_peel -> 2 + if has "reach" spec then 1 else 0
  in
  let main =
    let loop = 1 in
    match spec.family with
    | Min_relax ->
        loop + 3 (* source + init + pq *)
        + (if has "stop" spec then 2 else 0)
        + if has "print" spec then 1 else 0
    | Max_relax -> loop + 3 + if has "print" spec then 1 else 0
    | Sum_peel -> loop + 1 + if has "print" spec then 1 else 0
  in
  udf + main

let argv ~graph_file ?(target = 0) spec =
  match spec.family with
  | Sum_peel -> [| "dsl_case"; graph_file |]
  | Max_relax -> [| "dsl_case"; graph_file; "0" |]
  | Min_relax ->
      if has "stop" spec then
        [| "dsl_case"; graph_file; "0"; string_of_int target |]
      else [| "dsl_case"; graph_file; "0" |]

(* Grid constraints, mirroring Sweep's per-app rules. Pull and hybrid
   need the lazy backends (the interpreter plumbs the transpose for any
   matched program, and Sum_peel's constant-sum histogram was verified
   under pull); the eager backends are push-only, as in the native
   sweep. *)
let strategies = function
  | Sum_peel ->
      [
        Schedule.Eager_with_fusion; Schedule.Eager_no_fusion; Schedule.Lazy;
        Schedule.Lazy_constant_sum;
      ]
  | Min_relax | Max_relax ->
      [ Schedule.Eager_with_fusion; Schedule.Eager_no_fusion; Schedule.Lazy ]

let traversals = function
  | Schedule.Lazy | Schedule.Lazy_constant_sum ->
      [ Schedule.Sparse_push; Schedule.Dense_pull; Schedule.Hybrid ]
  | Schedule.Eager_with_fusion | Schedule.Eager_no_fusion ->
      [ Schedule.Sparse_push ]
