module Csr = Graphs.Csr

let null = Bucketing.Bucket_order.null_priority

(* Textbook Bellman-Ford (edge relaxation to fixpoint). Asymptotically
   hopeless and completely schedule-free — which is exactly what makes it
   a useful cross-check on Dijkstra: the two sequential references share
   no code, so an agreement bug would have to be made twice. *)
let bellman_ford graph ~source =
  let n = Csr.num_vertices graph in
  let dist = Array.make n null in
  if n > 0 then dist.(source) <- 0;
  let changed = ref (n > 0) in
  while !changed do
    changed := false;
    for u = 0 to n - 1 do
      if dist.(u) <> null then
        Csr.iter_out graph u (fun v w ->
            let d = dist.(u) + w in
            if dist.(v) = null || d < dist.(v) then begin
              dist.(v) <- d;
              changed := true
            end)
    done
  done;
  dist

type t = {
  sssp : Csr.t -> source:int -> int array -> (unit, string) result;
  ppsp : Csr.t -> source:int -> target:int -> int -> (unit, string) result;
  kcore : Csr.t -> int array -> (unit, string) result;
  setcover : Csr.t -> Algorithms.Setcover.result -> (unit, string) result;
}

let pp_dist d = if d = null then "unreachable" else string_of_int d

let check_dist_array ~expected ~actual =
  if Array.length expected <> Array.length actual then
    Error
      (Printf.sprintf "distance array length %d, expected %d"
         (Array.length actual) (Array.length expected))
  else begin
    let bad = ref None in
    Array.iteri
      (fun v e -> if !bad = None && actual.(v) <> e then bad := Some v)
      expected;
    match !bad with
    | None -> Ok ()
    | Some v ->
        Error
          (Printf.sprintf "dist(%d) = %s, oracle says %s" v
             (pp_dist actual.(v)) (pp_dist expected.(v)))
  end

let default_sssp graph ~source actual =
  let expected = Algorithms.Dijkstra.distances graph ~source in
  let bf = bellman_ford graph ~source in
  if bf <> expected then
    (* Oracle self-check: if the two references disagree, no verdict on
       the parallel run is trustworthy. *)
    Error "oracle disagreement: sequential Dijkstra <> Bellman-Ford"
  else check_dist_array ~expected ~actual

let default_ppsp graph ~source ~target actual =
  let expected = Algorithms.Dijkstra.distance_to graph ~source ~target in
  if actual = expected then Ok ()
  else
    Error
      (Printf.sprintf "distance(%d -> %d) = %s, oracle says %s" source target
         (pp_dist actual) (pp_dist expected))

let default_kcore graph actual =
  let expected = Algorithms.Kcore_peel_seq.coreness graph in
  if Array.length expected <> Array.length actual then
    Error
      (Printf.sprintf "coreness array length %d, expected %d"
         (Array.length actual) (Array.length expected))
  else begin
    let bad = ref None in
    Array.iteri
      (fun v e -> if !bad = None && actual.(v) <> e then bad := Some v)
      expected;
    match !bad with
    | None -> Ok ()
    | Some v ->
        Error
          (Printf.sprintf "coreness(%d) = %d, oracle says %d" v actual.(v)
             expected.(v))
  end

(* Set cover is approximate, so equality with the greedy reference is the
   wrong predicate. What every schedule must guarantee: the cover is
   valid, and its size is within the algorithm's quality envelope — the
   same 4x-of-greedy bound the unit tests use. *)
let default_setcover graph (r : Algorithms.Setcover.result) =
  if not (Algorithms.Setcover.is_valid_cover graph r) then
    Error "cover is not valid: some vertex is uncovered"
  else begin
    let greedy = Algorithms.Setcover_greedy.run graph in
    let bound = max 1 (4 * greedy.Algorithms.Setcover_greedy.cover_size) in
    if r.Algorithms.Setcover.cover_size <= bound then Ok ()
    else
      Error
        (Printf.sprintf "cover size %d exceeds 4x greedy (%d)"
           r.Algorithms.Setcover.cover_size
           greedy.Algorithms.Setcover_greedy.cover_size)
  end

let default =
  {
    sssp = default_sssp;
    ppsp = default_ppsp;
    kcore = default_kcore;
    setcover = default_setcover;
  }
