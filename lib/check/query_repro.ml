(* One service query as a reproducible command line. The slow-query log
   (lib/service) emits these so an operator can paste an offending
   query straight into check_runner and replay it solo — same graph
   file, same endpoints, same schedule, same worker count — judged
   against the sequential oracles. Where Sweep reproduces a whole
   checker configuration from a printable graph spec, this reproduces
   one production query from the graph *file* the server loaded. *)

module Pool = Parallel.Pool
module Csr = Graphs.Csr
module Handle = Graphs.Handle
module Edge_list = Graphs.Edge_list
module Schedule = Ordered.Schedule

type app = Ppsp | Astar | Widest | Kcore

let app_to_string = function
  | Ppsp -> "ppsp"
  | Astar -> "astar"
  | Widest -> "widest"
  | Kcore -> "kcore"

let app_of_string = function
  | "ppsp" -> Ok Ppsp
  | "astar" -> Ok Astar
  | "widest" -> Ok Widest
  | "kcore" -> Ok Kcore
  | other -> Error (Printf.sprintf "unknown query app %S" other)

type t = {
  app : app;
  graph_file : string;
  symmetric : bool; (* symmetrize after load, as `serve --symmetric` *)
  source : int; (* the vertex, for kcore *)
  target : int; (* ignored by kcore *)
  schedule : Schedule.t;
  workers : int;
}

let to_line r =
  let endpoints =
    match r.app with
    | Kcore -> Printf.sprintf "--vertex %d" r.source
    | Ppsp | Astar | Widest ->
        Printf.sprintf "--source %d --target %d" r.source r.target
  in
  Printf.sprintf "check_runner --app %s --graph-file %s %s --schedule '%s' --workers %d%s"
    (app_to_string r.app) r.graph_file endpoints
    (Sweep.schedule_to_string r.schedule)
    r.workers
    (if r.symmetric then " --symmetric" else "")

(* ------------------------------------------------------------------ *)
(* Parsing *)

(* Tokenize respecting single quotes (the schedule is quoted). *)
let tokenize line =
  let buf = Buffer.create 32 in
  let toks = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      toks := Buffer.contents buf :: !toks;
      Buffer.clear buf
    end
  in
  let in_quote = ref false in
  String.iter
    (fun c ->
      if c = '\'' then in_quote := not !in_quote
      else if (c = ' ' || c = '\t') && not !in_quote then flush ()
      else Buffer.add_char buf c)
    line;
  flush ();
  if !in_quote then Error "unterminated quote" else Ok (List.rev !toks)

let ( let* ) = Result.bind

let of_line line =
  let* toks = tokenize line in
  (* Skip everything up to the first flag so a copied line may carry a
     leading `check_runner`, `dune exec ... --`, or a path. *)
  let rec to_flags = function
    | [] -> []
    | tok :: _ as l when String.length tok > 2 && String.sub tok 0 2 = "--" -> l
    | _ :: rest -> to_flags rest
  in
  let int_of key v =
    match int_of_string_opt v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "%s: not an integer: %S" key v)
  in
  let rec parse acc = function
    | [] -> Ok acc
    | "--symmetric" :: rest -> parse { acc with symmetric = true } rest
    | flag :: value :: rest when String.length flag > 2 && String.sub flag 0 2 = "--"
      -> (
        match flag with
        | "--app" ->
            let* app = app_of_string value in
            parse { acc with app } rest
        | "--graph-file" -> parse { acc with graph_file = value } rest
        | "--source" | "--vertex" ->
            let* source = int_of flag value in
            parse { acc with source } rest
        | "--target" ->
            let* target = int_of flag value in
            parse { acc with target } rest
        | "--schedule" ->
            let* schedule = Sweep.schedule_of_string value in
            parse { acc with schedule } rest
        | "--workers" ->
            let* workers = int_of flag value in
            parse { acc with workers } rest
        | _ -> Error (Printf.sprintf "unknown flag %S" flag))
    | tok :: _ -> Error (Printf.sprintf "unexpected token %S" tok)
  in
  let* r =
    parse
      {
        app = Ppsp;
        graph_file = "";
        symmetric = false;
        source = -1;
        target = -1;
        schedule = Schedule.default;
        workers = 1;
      }
      (to_flags toks)
  in
  if r.graph_file = "" then Error "missing --graph-file"
  else if r.source < 0 then Error "missing --source/--vertex"
  else if r.target < 0 && r.app <> Kcore then Error "missing --target"
  else if r.workers < 1 then Error "--workers must be >= 1"
  else Ok r

(* ------------------------------------------------------------------ *)
(* Replay *)

let load_edge_list path =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "graph file not found: %s" path)
  else
    try
      Ok
        (if Graphs.Graph_bin.is_graph_bin path then
           Csr.to_edge_list (Graphs.Graph_bin.load_csr path)
         else Graphs.Graph_io.load path)
    with
    | Sys_error msg | Failure msg -> Error msg
    | Invalid_argument msg -> Error msg

let run ?(oracle = Oracle.default) r =
  let* el = load_edge_list r.graph_file in
  let el = if r.symmetric then Edge_list.symmetrized el else el in
  (* The peel needs the undirected closure whatever the server loaded;
     the service builds the same view internally. *)
  let el = if r.app = Kcore then Edge_list.symmetrized el else el in
  let handle = Handle.of_edge_list el in
  let graph = Handle.csr handle in
  let n = Csr.num_vertices graph in
  let range what v =
    if v < 0 || v >= n then
      Error (Printf.sprintf "%s %d out of range [0, %d)" what v n)
    else Ok ()
  in
  let* () = range (if r.app = Kcore then "vertex" else "source") r.source in
  let* () = match r.app with Kcore -> Ok () | _ -> range "target" r.target in
  Pool.with_pool ~num_workers:r.workers (fun pool ->
      let schedule = r.schedule in
      match r.app with
      | Ppsp ->
          let res =
            Algorithms.Ppsp.run ~pool ~graph ~handle ~schedule ~source:r.source
              ~target:r.target ()
          in
          oracle.Oracle.ppsp graph ~source:r.source ~target:r.target
            res.Algorithms.Ppsp.distance
      | Astar ->
          (* Replayed without the server's ALT heuristic: h = 0 is plain
             PPSP, still exact, so the oracle judgement is unchanged. *)
          let res =
            Algorithms.Astar.run ~pool ~graph ~handle ~schedule ~source:r.source
              ~target:r.target ()
          in
          oracle.Oracle.ppsp graph ~source:r.source ~target:r.target
            res.Algorithms.Astar.distance
      | Widest ->
          let res =
            Algorithms.Widest_path.run ~pool ~graph ~handle ~schedule
              ~source:r.source ()
          in
          let got = res.Algorithms.Widest_path.capacity.(r.target) in
          let want = (Algorithms.Widest_path.sequential graph ~source:r.source).(r.target) in
          if got = want then Ok ()
          else
            Error
              (Printf.sprintf "widest capacity %d -> %d: got %d, oracle %d"
                 r.source r.target got want)
      | Kcore ->
          let res = Algorithms.Kcore.run ~pool ~graph ~handle ~schedule () in
          oracle.Oracle.kcore graph res.Algorithms.Kcore.coreness)
