(* Differential checking for the dynamic-graph path: random delta
   batches replayed against random graphs, with three independent
   answers per step that must all agree —

   - [Sssp_delta.run_incremental] (the ordered engine, seeded from the
     affected set),
   - [Sssp_delta.run] from scratch on the mutated graph (same schedule),
   - [Bellman_ford.run_incremental] (unordered repair sharing no
     bucketing code),

   judged by the sequential oracle on top. A mismatch shrinks the
   failing batch with ddmin (and drops unneeded prefix batches) into a
   one-line repro for [check_runner --dynamic]. *)

module Pool = Parallel.Pool
module Csr = Graphs.Csr
module Delta = Graphs.Delta
module Handle = Graphs.Handle
module Schedule = Ordered.Schedule
module Rng = Support.Rng

type config = {
  spec : Graph_case.spec;
  schedule : Schedule.t;
  workers : int;
  batches : Delta.batch array;
}

(* ---------------- batches <-> repro strings ---------------- *)

let batches_to_string batches =
  String.concat ";" (Array.to_list (Array.map Delta.to_string batches))

let ( let* ) = Result.bind

let batches_of_string s =
  if String.trim s = "" then Ok [||]
  else
    let parts = String.split_on_char ';' (String.trim s) in
    let* batches =
      List.fold_left
        (fun acc part ->
          let* acc = acc in
          let* b = Delta.of_string part in
          Ok (b :: acc))
        (Ok []) parts
    in
    Ok (Array.of_list (List.rev batches))

let repro_line ?(chaos = false) ~seed config =
  Printf.sprintf
    "check_runner --dynamic --seed %d --graph '%s' --workers %d --schedule '%s' \
     --batches '%s'%s"
    seed
    (Graph_case.to_string config.spec)
    config.workers
    (Sweep.schedule_to_string config.schedule)
    (batches_to_string config.batches)
    (if chaos then " --chaos" else "")

(* ---------------- random batch generation ---------------- *)

(* Deletes and reweights target edges that exist at generation time, so a
   batch sequence keeps mutating live structure instead of no-oping; the
   tracked graph evolves batch over batch exactly as replay will. *)
let gen_batch rng csr ~ops =
  let n = Csr.num_vertices csr in
  let random_existing () =
    let m = Csr.num_edges csr in
    if m = 0 then None
    else begin
      let i = Rng.int rng m in
      let u = ref 0 in
      let offsets = Csr.offsets csr in
      while offsets.(!u + 1) <= i do
        incr u
      done;
      Some (!u, Csr.edge_target csr i)
    end
  in
  let insert () =
    Delta.Insert { src = Rng.int rng n; dst = Rng.int rng n; weight = 1 + Rng.int rng 9 }
  in
  Array.init ops (fun _ ->
      if n = 0 then invalid_arg "Dynamic.gen_batch: empty vertex universe"
      else
        match Rng.int rng 4 with
        | 0 | 1 -> insert ()
        | 2 -> (
            match random_existing () with
            | Some (src, dst) -> Delta.Delete { src; dst }
            | None -> insert ())
        | _ -> (
            match random_existing () with
            | Some (src, dst) ->
                Delta.Reweight { src; dst; weight = 1 + Rng.int rng 9 }
            | None -> insert ()))

let gen_batches ~seed csr ~num_batches ~ops_per_batch =
  let rng = Rng.create seed in
  let cur = ref csr in
  Array.init num_batches (fun _ ->
      let b = gen_batch rng !cur ~ops:ops_per_batch in
      cur := Delta.apply !cur b;
      b)

(* ---------------- one configuration ---------------- *)

let first_diff a b =
  let rec go i =
    if i >= Array.length a then None
    else if a.(i) <> b.(i) then Some i
    else go (i + 1)
  in
  if Array.length a <> Array.length b then Some (-1) else go 0

let diff_message what a b =
  match first_diff a b with
  | None -> None
  | Some (-1) -> Some (Printf.sprintf "%s: length mismatch" what)
  | Some i ->
      Some (Printf.sprintf "%s: dist[%d] = %d vs %d" what i a.(i) b.(i))

(* Replay [batches] from the initial graph; every step must agree across
   incremental, from-scratch, the unordered incremental counterpart, and
   the sequential oracle. Step 0 is the initial full run; batch [k]
   (0-based) is judged as step [k + 1]. *)
let run_config ~pool config =
  match Schedule.validate config.schedule with
  | Error msg -> Error (0, "invalid schedule: " ^ msg)
  | Ok schedule -> (
      let judge () =
        let case = Graph_case.build config.spec in
        let csr0 = Csr.of_edge_list case.Graph_case.el in
        let source = 0 in
        let handle0 = Handle.create ~version:0 csr0 in
        let r0 =
          Algorithms.Sssp_delta.run ~pool ~graph:csr0 ~handle:handle0 ~schedule
            ~source ()
        in
        let bf0 = Algorithms.Bellman_ford.run ~pool ~graph:csr0 ~source () in
        match Oracle.default.Oracle.sssp csr0 ~source r0.Algorithms.Sssp_delta.dist with
        | Error msg -> Error (0, "initial run: " ^ msg)
        | Ok () ->
            let rec go step cur prev_dist prev_bf =
              if step > Array.length config.batches then Ok ()
              else
                let batch = config.batches.(step - 1) in
                match Delta.validate ~num_vertices:(Csr.num_vertices cur) batch with
                | Error msg -> Error (step, "invalid batch: " ^ msg)
                | Ok () -> (
                    let next = Delta.apply cur batch in
                    let handle = Handle.create ~version:step next in
                    let inc =
                      Algorithms.Sssp_delta.run_incremental ~pool ~old_graph:cur
                        ~graph:next ~handle ~schedule ~source ~batch
                        ~prev:prev_dist ()
                    in
                    let full =
                      Algorithms.Sssp_delta.run ~pool ~graph:next ~handle
                        ~schedule ~source ()
                    in
                    let bf =
                      Algorithms.Bellman_ford.run_incremental ~pool
                        ~old_graph:cur ~graph:next ~source ~batch ~prev:prev_bf ()
                    in
                    let inc_dist =
                      inc.Algorithms.Sssp_delta.result.Algorithms.Sssp_delta.dist
                    in
                    match
                      ( diff_message "incremental vs from-scratch" inc_dist
                          full.Algorithms.Sssp_delta.dist,
                        diff_message "incremental vs unordered-incremental"
                          inc_dist bf.Algorithms.Bellman_ford.dist )
                    with
                    | Some msg, _ | None, Some msg -> Error (step, msg)
                    | None, None -> (
                        match Oracle.default.Oracle.sssp next ~source inc_dist with
                        | Error msg -> Error (step, "oracle: " ^ msg)
                        | Ok () ->
                            go (step + 1) next inc_dist
                              bf.Algorithms.Bellman_ford.dist))
            in
            go 1 csr0 r0.Algorithms.Sssp_delta.dist bf0.Algorithms.Bellman_ford.dist
      in
      match judge () with
      | result -> result
      | exception exn -> Error (0, "exception: " ^ Printexc.to_string exn))

(* ---------------- shrinking ---------------- *)

(* Minimize a failing replay: drop whole prefix/suffix batches greedily,
   then ddmin the ops of what remains (all batches concatenated into the
   candidate list positionally). Probe count bounded; each probe is a
   full replay. *)
let shrink ~pool config =
  let probes = ref 0 in
  let max_probes = 300 in
  let still_fails batches =
    incr probes;
    !probes <= max_probes
    && Result.is_error (run_config ~pool { config with batches })
  in
  (* Drop batches not needed for the failure, keeping replay order. *)
  let drop_batches batches =
    let n = Array.length batches in
    let kept = ref (Array.to_list (Array.mapi (fun i b -> (i, b)) batches)) in
    List.iter
      (fun i ->
        let candidate = List.filter (fun (j, _) -> j <> i) !kept in
        if List.length candidate < List.length !kept then
          let arr = Array.of_list (List.map snd candidate) in
          if still_fails arr then kept := candidate)
      (List.init n (fun i -> i));
    Array.of_list (List.map snd !kept)
  in
  let rec ddmin (ops : Delta.op array) granularity wrap =
    let len = Array.length ops in
    if len <= 1 || granularity > len then ops
    else begin
      let chunk = (len + granularity - 1) / granularity in
      let complements =
        List.init granularity (fun i ->
            let lo = i * chunk and hi = min len ((i + 1) * chunk) in
            Array.append (Array.sub ops 0 lo) (Array.sub ops hi (len - hi)))
      in
      match List.find_opt (fun c -> still_fails (wrap c)) complements with
      | Some smaller -> ddmin smaller (max 2 (granularity - 1)) wrap
      | None ->
          if granularity >= len then ops
          else ddmin ops (min len (2 * granularity)) wrap
    end
  in
  let batches = drop_batches config.batches in
  (* Shrink each remaining batch's ops in place. *)
  let batches = Array.copy batches in
  Array.iteri
    (fun i b ->
      let wrap c =
        let copy = Array.copy batches in
        copy.(i) <- c;
        copy
      in
      batches.(i) <- ddmin b 2 wrap)
    batches;
  if batches = config.batches then None else Some batches

(* ---------------- the sweep ---------------- *)

type failure = {
  config : config;
  step : int;
  message : string;
  repro : string;
}

type summary = {
  configs_run : int;
  failures : failure list;
  elapsed_seconds : float;
  budget_exhausted : bool;
  race_findings : int;
}

let default_specs ~seed =
  [
    Graph_case.Random { seed; n = 48; m = 200; max_w = 12 };
    Graph_case.Random { seed = seed + 1; n = 64; m = 120; max_w = 5 };
    Graph_case.Dup_edges { seed = seed + 2; n = 24; m = 60; max_w = 9 };
    Graph_case.Road { seed = seed + 3; rows = 5; cols = 6 };
    Graph_case.Path 13;
    Graph_case.Cycle 9;
    Graph_case.Star 16;
    Graph_case.Self_loops 8;
  ]

(* The dynamic schedule axes: every strategy × direction combination the
   static sweep exercises, crossed with the incremental-threshold knob —
   0 forces the full-recompute fallback (so fallback parity is itself
   swept), 1 never falls back, and the default sits between. *)
let schedules graph =
  let thresholds = [ 0.0; Schedule.default.Schedule.incremental_threshold; 1.0 ] in
  let deltas = List.sort_uniq compare [ 1; max 1 (Csr.max_weight graph) ] in
  List.concat_map
    (fun (strategy, traversal) ->
      List.concat_map
        (fun delta ->
          List.map
            (fun incremental_threshold ->
              {
                Schedule.default with
                Schedule.strategy;
                traversal;
                delta;
                incremental_threshold;
              })
            thresholds)
        deltas)
    [
      (Schedule.Eager_with_fusion, Schedule.Sparse_push);
      (Schedule.Eager_no_fusion, Schedule.Sparse_push);
      (Schedule.Lazy, Schedule.Sparse_push);
      (Schedule.Lazy, Schedule.Dense_pull);
      (Schedule.Lazy, Schedule.Hybrid);
    ]

exception Stop

let run ?specs ?(workers = [ 1; 2; 4 ]) ?(budget = 60.) ?(seed = 0)
    ?(max_failures = 5) ?(num_batches = 3) ?(ops_per_batch = 6) ?(chaos = false)
    ?(race = false) ?(log = fun _ -> ()) () =
  let specs = match specs with Some s -> s | None -> default_specs ~seed in
  let workers = List.sort_uniq compare workers in
  if chaos then Parallel.Chaos.enable ~seed;
  if race then begin
    Parallel.Race.clear ();
    Parallel.Race.enable ()
  end;
  let pools = List.map (fun w -> (w, Pool.create ~num_workers:w ())) workers in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (_, p) -> Pool.shutdown p) pools;
      if chaos then Parallel.Chaos.disable ();
      if race then Parallel.Race.disable ())
    (fun () ->
      let start = Unix.gettimeofday () in
      let elapsed () = Unix.gettimeofday () -. start in
      let configs_run = ref 0 in
      let failures = ref [] in
      let budget_exhausted = ref false in
      (try
         List.iter
           (fun spec ->
             let case = Graph_case.build spec in
             let csr0 = Csr.of_edge_list case.Graph_case.el in
             let batches =
               gen_batches ~seed:(seed + Hashtbl.hash (Graph_case.to_string spec))
                 csr0 ~num_batches ~ops_per_batch
             in
             List.iter
               (fun schedule ->
                 List.iter
                   (fun (w, pool) ->
                     if elapsed () > budget then begin
                       budget_exhausted := true;
                       raise Stop
                     end;
                     incr configs_run;
                     let config = { spec; schedule; workers = w; batches } in
                     match run_config ~pool config with
                     | Ok () -> ()
                     | Error (step, message) ->
                         log
                           (Printf.sprintf "FAIL dynamic on %s step %d: %s"
                              (Graph_case.to_string spec) step message);
                         let config =
                           match shrink ~pool config with
                           | Some batches -> { config with batches }
                           | None -> config
                         in
                         let repro = repro_line ~chaos ~seed config in
                         log ("repro: " ^ repro);
                         failures := { config; step; message; repro } :: !failures;
                         if List.length !failures >= max_failures then raise Stop)
                   pools)
               (schedules csr0))
           specs
       with Stop -> ());
      {
        configs_run = !configs_run;
        failures = List.rev !failures;
        elapsed_seconds = elapsed ();
        budget_exhausted = !budget_exhausted;
        race_findings = (if race then Parallel.Race.num_findings () else 0);
      })
