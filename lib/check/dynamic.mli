(** Differential checking for the dynamic-graph path.

    A {!config} replays a sequence of random {!Graphs.Delta} batches
    against a seeded graph case; every step must agree across four
    answers: [Sssp_delta.run_incremental] (the ordered engine seeded
    from the affected set), a from-scratch [Sssp_delta.run] under the
    same schedule, [Bellman_ford.run_incremental] (unordered repair that
    shares no bucketing code), and the sequential oracle. {!run} sweeps
    specs × schedules (push/pull/hybrid × strategies × Δ ×
    incremental-threshold, including threshold 0 — the forced
    full-recompute fallback) × worker counts under a time budget, with
    chaos/race modes; failures ddmin-shrink the batches into a
    [check_runner --dynamic] repro line. *)

type config = {
  spec : Graph_case.spec;
  schedule : Ordered.Schedule.t;
  workers : int;
  batches : Graphs.Delta.batch array;
}

(** Batches joined by [";"], each in {!Graphs.Delta.to_string} form. *)
val batches_to_string : Graphs.Delta.batch array -> string

val batches_of_string : string -> (Graphs.Delta.batch array, string) result

(** One-line [check_runner --dynamic] invocation reproducing [config]. *)
val repro_line : ?chaos:bool -> seed:int -> config -> string

(** [gen_batches ~seed csr ~num_batches ~ops_per_batch] generates random
    batches whose deletes/reweights target edges live at that point of
    the replay (the tracked graph evolves batch over batch). *)
val gen_batches :
  seed:int ->
  Graphs.Csr.t ->
  num_batches:int ->
  ops_per_batch:int ->
  Graphs.Delta.batch array

(** [run_config ~pool config] replays and judges one configuration.
    [Error (step, message)]: step 0 is the initial full run (or a
    configuration error); step [k >= 1] failed replaying batch [k - 1]. *)
val run_config : pool:Parallel.Pool.t -> config -> (unit, int * string) result

(** [shrink ~pool config] minimizes a failing replay: unneeded batches
    are dropped and the remaining ops ddmin-shrunk. [None] when no
    smaller failing form was found. *)
val shrink : pool:Parallel.Pool.t -> config -> Graphs.Delta.batch array option

type failure = {
  config : config;  (** Post-shrink configuration. *)
  step : int;
  message : string;
  repro : string;
}

type summary = {
  configs_run : int;
  failures : failure list;
  elapsed_seconds : float;
  budget_exhausted : bool;
  race_findings : int;
}

val default_specs : seed:int -> Graph_case.spec list

(** The dynamic schedule grid for one graph (strategy × direction × Δ ×
    incremental threshold). *)
val schedules : Graphs.Csr.t -> Ordered.Schedule.t list

(** [run ()] sweeps the cross product under [budget] seconds, stopping
    after [max_failures]. Mirrors {!Sweep.run}'s chaos/race/log knobs. *)
val run :
  ?specs:Graph_case.spec list ->
  ?workers:int list ->
  ?budget:float ->
  ?seed:int ->
  ?max_failures:int ->
  ?num_batches:int ->
  ?ops_per_batch:int ->
  ?chaos:bool ->
  ?race:bool ->
  ?log:(string -> unit) ->
  unit ->
  summary
