(** The layout seam between graph storage and the traversal kernels.

    {!S} is the contract a sweep needs from adjacency storage. The
    traversal core ([Traverse.Edge_map]) functorizes its push/pull kernels
    over it, producing fully specialized loops per layout; {!t} packs the
    concrete layouts for runtime selection — the dispatch happens once per
    sweep, never per edge. *)

module type S = sig
  type g

  val num_vertices : g -> int
  val out_degree : g -> int -> int

  (** Borrowed per-vertex out-degrees for the hybrid degree-sum reduce.
      Do not mutate. *)
  val out_degrees : g -> int array

  val iter_out : g -> int -> (int -> int -> unit) -> unit
end

(** Which storage layout to use — the CLI/bench/checker axis. *)
type kind =
  | Plain  (** three flat int arrays ({!Csr}) *)
  | Compressed  (** delta/varint byte streams ({!Csr_compressed}) *)

(** A graph packed with its layout. *)
type t =
  | Plain_graph of Csr.t
  | Compressed_graph of Csr_compressed.t

module Plain_layout : S with type g = Csr.t
module Compressed_layout : S with type g = Csr_compressed.t

val kind_to_string : kind -> string
val kind_of_string : string -> (kind, string) result
val all_kinds : kind list

(** [of_csr kind g] packs [g] in the requested layout, compressing when
    asked. Prefer {!Handle.t} when the conversion should be cached. *)
val of_csr : kind -> Csr.t -> t

val kind : t -> kind
val num_vertices : t -> int
val num_edges : t -> int
val out_degree : t -> int -> int
val iter_out : t -> int -> (int -> int -> unit) -> unit

(** [to_csr t] is the plain form (decodes when compressed). *)
val to_csr : t -> Csr.t
