(* A mutable, versioned graph: an immutable CSR per version, an
   append-only log of the delta batches between versions, and
   refcounted snapshot pinning.

   Every [commit] materializes the next version's plain CSR eagerly
   (Delta.apply — one array copy plus the touched adjacency lists) and
   mints a fresh Handle for it, so derived layouts (transpose,
   compressed, degree memo) are version-scoped and rebuilt lazily on
   first use. [compact] rebuilds them all eagerly on a handle that is
   still private to the compacting thread, then swaps it in under the
   lock only if no commit raced — in-flight readers keep their pinned
   snapshots untouched.

   Locking: one mutex guards the version table, the log, and the pin
   counts. Handles themselves are never guarded — a published handle's
   lazy cells are only forced from the single orchestrating/runner
   thread (the same discipline Handle already documents), and the
   compaction thread only forces cells of its unpublished handle. *)

type view = {
  v_handle : Handle.t;
  mutable pins : int;
}

type t = {
  kind : Layout.kind;
  compact_every : int;
  mutex : Mutex.t;
  mutable latest_version : int;
  views : (int, view) Hashtbl.t; (* version -> view; always holds latest *)
  mutable log : (int * Delta.batch) list; (* ascending; batch producing that version *)
  mutable ops_since_compaction : int;
  mutable compactions : int;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let create ?(kind = Layout.Plain) ?(compact_every = 4096) csr =
  if compact_every < 1 then invalid_arg "Versioned.create: compact_every must be >= 1";
  let views = Hashtbl.create 8 in
  Hashtbl.replace views 0 { v_handle = Handle.create ~kind ~version:0 csr; pins = 0 };
  {
    kind;
    compact_every;
    mutex = Mutex.create ();
    latest_version = 0;
    views;
    log = [];
    ops_since_compaction = 0;
    compactions = 0;
  }

let latest_view_unlocked t = Hashtbl.find t.views t.latest_version
let version t = locked t (fun () -> t.latest_version)
let latest t = locked t (fun () -> (latest_view_unlocked t).v_handle)
let num_vertices t = Handle.num_vertices (latest t)
let kind t = t.kind
let compactions t = locked t (fun () -> t.compactions)
let ops_pending t = locked t (fun () -> t.ops_since_compaction)

let commit t batch =
  locked t (fun () ->
      let cur = latest_view_unlocked t in
      let new_csr = Delta.apply (Handle.csr cur.v_handle) batch in
      let v = t.latest_version + 1 in
      Hashtbl.replace t.views v
        { v_handle = Handle.create ~kind:t.kind ~version:v new_csr; pins = 0 };
      (* A superseded, unpinned version has no remaining readers. *)
      if cur.pins = 0 then Hashtbl.remove t.views t.latest_version;
      t.latest_version <- v;
      t.log <- t.log @ [ (v, batch) ];
      t.ops_since_compaction <- t.ops_since_compaction + Delta.size batch;
      v)

let pin t =
  locked t (fun () ->
      let view = latest_view_unlocked t in
      view.pins <- view.pins + 1;
      view.v_handle)

let pin_version t v =
  locked t (fun () ->
      match Hashtbl.find_opt t.views v with
      | None -> None
      | Some view ->
          view.pins <- view.pins + 1;
          Some view.v_handle)

let release t handle =
  locked t (fun () ->
      let v = Handle.version handle in
      match Hashtbl.find_opt t.views v with
      | None -> invalid_arg "Versioned.release: unknown snapshot version"
      | Some view ->
          if view.pins <= 0 then invalid_arg "Versioned.release: snapshot not pinned";
          view.pins <- view.pins - 1;
          if view.pins = 0 && v <> t.latest_version then Hashtbl.remove t.views v)

let pinned_versions t =
  locked t (fun () ->
      Hashtbl.fold (fun v view acc -> if view.pins > 0 then v :: acc else acc) t.views []
      |> List.sort compare)

let batches_since t ~version =
  locked t (fun () ->
      if version = t.latest_version then Some [||]
      else
        let since = List.filter (fun (v, _) -> v > version) t.log in
        (* The log must cover every step from [version + 1] up to latest —
           compaction may have truncated older entries. *)
        let versions = List.map fst since in
        let expected = List.init (t.latest_version - version) (fun i -> version + 1 + i) in
        if versions = expected && version <= t.latest_version then
          Some (Array.of_list (List.map snd since))
        else None)

let should_compact t = locked t (fun () -> t.ops_since_compaction >= t.compact_every)

let compact t =
  let v, csr =
    locked t (fun () ->
        let view = latest_view_unlocked t in
        (t.latest_version, Handle.csr view.v_handle))
  in
  (* Build every derived layout outside the lock, on a handle nobody else
     can see yet. *)
  let fresh = Handle.create ~kind:t.kind ~version:v csr in
  Handle.prewarm fresh;
  locked t (fun () ->
      if t.latest_version <> v then false
      else begin
        let old = Hashtbl.find t.views v in
        (* Readers pinned on the old handle keep it (same version, same
           CSR); new pins get the prewarmed one. Pin counts live on the
           view, so releases through either handle balance. *)
        Hashtbl.replace t.views v { v_handle = fresh; pins = old.pins };
        let oldest_pinned =
          Hashtbl.fold
            (fun pv view acc -> if view.pins > 0 then min pv acc else acc)
            t.views t.latest_version
        in
        t.log <- List.filter (fun (lv, _) -> lv > oldest_pinned) t.log;
        t.ops_since_compaction <- 0;
        t.compactions <- t.compactions + 1;
        true
      end)
