(* Batched edge mutations against an immutable CSR.

   A batch is an ordered list of inserts/deletes/reweights; [apply]
   materializes a fresh CSR (the input is never mutated — snapshot
   pinning in [Versioned] depends on that). Untouched adjacency lists
   are blit-copied; only vertices named as a source by some op pay the
   per-edge merge, so a small batch against a large graph costs one
   O(m) array copy plus work proportional to the touched lists.

   [plan] computes the affected set for incremental recompute: the
   conservative dirty closure (vertices whose previous distance may no
   longer be achievable) plus the seed candidates that re-anchor the
   priority structures at the clean/dirty boundary. It is parameterized
   by [~null] so this library stays independent of the bucketing
   layer's sentinel. *)

type op =
  | Insert of { src : int; dst : int; weight : int }
  | Delete of { src : int; dst : int }
  | Reweight of { src : int; dst : int; weight : int }

type batch = op array

let op_src = function
  | Insert { src; _ } | Delete { src; _ } | Reweight { src; _ } -> src

let op_dst = function
  | Insert { dst; _ } | Delete { dst; _ } | Reweight { dst; _ } -> dst

let validate ~num_vertices (batch : batch) =
  let check_vertex what v =
    if v < 0 || v >= num_vertices then
      Error (Printf.sprintf "%s %d out of range [0, %d)" what v num_vertices)
    else Ok ()
  in
  let rec go i =
    if i >= Array.length batch then Ok ()
    else
      let op = batch.(i) in
      match check_vertex "src" (op_src op) with
      | Error _ as e -> e
      | Ok () -> (
          match check_vertex "dst" (op_dst op) with
          | Error _ as e -> e
          | Ok () -> (
              match op with
              | Insert { weight; _ } | Reweight { weight; _ } ->
                  if weight <= 0 then Error "weight must be positive" else go (i + 1)
              | Delete _ -> go (i + 1)))
  in
  go 0

let size (batch : batch) = Array.length batch

(* Flip every op for transpose-side application. *)
let reverse (batch : batch) : batch =
  Array.map
    (function
      | Insert { src; dst; weight } -> Insert { src = dst; dst = src; weight }
      | Delete { src; dst } -> Delete { src = dst; dst = src }
      | Reweight { src; dst; weight } -> Reweight { src = dst; dst = src; weight })
    batch

let apply (csr : Csr.t) (batch : batch) : Csr.t =
  let n = Csr.num_vertices csr in
  (match validate ~num_vertices:n batch with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Delta.apply: " ^ msg));
  (* Group ops by source, preserving batch order within each list. *)
  let by_src : (int, op list) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun op ->
      let s = op_src op in
      let prev = try Hashtbl.find by_src s with Not_found -> [] in
      Hashtbl.replace by_src s (op :: prev))
    batch;
  (* New adjacency per touched source: replay the ops in order against the
     existing (dst, weight) list, then re-sort by target so the CSR
     invariant (binary-searchable neighbor lists) survives mutation. *)
  let touched : (int, (int * int) array) Hashtbl.t =
    Hashtbl.create (Hashtbl.length by_src)
  in
  Hashtbl.iter
    (fun u ops ->
      let adj =
        ref (List.rev (Csr.fold_out csr u (fun acc dst w -> (dst, w) :: acc) []))
      in
      List.iter
        (fun op ->
          match op with
          | Insert { dst; weight; _ } -> adj := (dst, weight) :: !adj
          | Delete { dst; _ } -> adj := List.filter (fun (d, _) -> d <> dst) !adj
          | Reweight { dst; weight; _ } ->
              adj := List.map (fun (d, w) -> if d = dst then (d, weight) else (d, w)) !adj)
        (List.rev ops);
      let arr = Array.of_list !adj in
      Array.sort compare arr;
      Hashtbl.replace touched u arr)
    by_src;
  let offsets = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    let deg =
      match Hashtbl.find_opt touched u with
      | Some arr -> Array.length arr
      | None -> Csr.out_degree csr u
    in
    offsets.(u + 1) <- offsets.(u) + deg
  done;
  let m = offsets.(n) in
  let targets = Array.make m 0 in
  let weights = Array.make m 0 in
  let old_offsets = Csr.offsets csr in
  let old_targets = Csr.targets csr in
  let old_weights = Csr.weights csr in
  for u = 0 to n - 1 do
    let lo = offsets.(u) in
    match Hashtbl.find_opt touched u with
    | Some arr ->
        Array.iteri
          (fun i (dst, w) ->
            targets.(lo + i) <- dst;
            weights.(lo + i) <- w)
          arr
    | None ->
        let old_lo = old_offsets.(u) in
        let deg = old_offsets.(u + 1) - old_lo in
        Array.blit old_targets old_lo targets lo deg;
        Array.blit old_weights old_lo weights lo deg
  done;
  Csr.unsafe_of_arrays ~num_vertices:n ~offsets ~targets ~weights

(* ------------------------------------------------------------------ *)
(* Affected-set planning for incremental recompute                     *)

type plan = {
  dirty : int array;
      (* vertices whose previous distance must be discarded (reset to
         [null]) before re-running; sorted ascending *)
  seeds : (int * int) list;
      (* (vertex, candidate distance) pairs re-anchoring the priority
         structures: the clean→dirty boundary of the new graph, plus
         improving-op candidates into clean vertices *)
  affected : int; (* |dirty| + |seeds| — the fallback-threshold measure *)
}

let plan ~old_csr ~new_csr (batch : batch) ~dist ~null =
  let n = Csr.num_vertices old_csr in
  if Array.length dist <> n then invalid_arg "Delta.plan: dist length mismatch";
  let dirty = Array.make n false in
  (* Seeds of the dirty closure: targets of removed or raised edges whose
     previous distance was supported through that edge. Conservative — a
     vertex with another intact tight predecessor is still marked, which
     only costs recomputation, never correctness. *)
  let queue = Queue.create () in
  let mark v =
    if not dirty.(v) then begin
      dirty.(v) <- true;
      Queue.add v queue
    end
  in
  Array.iter
    (fun op ->
      match op with
      | Insert _ -> ()
      | Delete { src = u; dst = v } ->
          if dist.(u) <> null && dist.(v) <> null then
            Csr.iter_out old_csr u (fun d w ->
                if d = v && dist.(v) = dist.(u) + w then mark v)
      | Reweight { src = u; dst = v; weight = w_new } ->
          if dist.(u) <> null && dist.(v) <> null then
            Csr.iter_out old_csr u (fun d w_old ->
                if d = v && w_new > w_old && dist.(v) = dist.(u) + w_old then
                  mark v))
    batch;
  (* Close over the old graph: a vertex supported by a dirty predecessor
     through a tight edge loses its support too. Forward propagation over
     out-edges reaches exactly the tight successors, so no transpose is
     needed. *)
  while not (Queue.is_empty queue) do
    let u = Queue.take queue in
    Csr.iter_out old_csr u (fun v w ->
        if (not dirty.(v)) && dist.(v) <> null && dist.(u) <> null
           && dist.(v) = dist.(u) + w
        then mark v)
  done;
  (* Boundary seeds: every new-graph edge from a clean, reached vertex
     into a dirty one proposes a candidate distance. Inserted edges are
     part of the new graph, so this scan covers them for dirty targets;
     improving ops into clean targets are proposed explicitly below. *)
  let seeds = ref [] in
  let num_dirty = ref 0 in
  for u = 0 to n - 1 do
    if dirty.(u) then incr num_dirty
    else if dist.(u) <> null then
      Csr.iter_out new_csr u (fun v w ->
          if dirty.(v) then seeds := (v, dist.(u) + w) :: !seeds)
  done;
  Array.iter
    (fun op ->
      match op with
      | Delete _ -> ()
      | Insert { src = u; dst = v; weight = w } | Reweight { src = u; dst = v; weight = w }
        ->
          if (not dirty.(u)) && (not dirty.(v)) && dist.(u) <> null then
            let cand = dist.(u) + w in
            if dist.(v) = null || cand < dist.(v) then seeds := (v, cand) :: !seeds)
    batch;
  let dirty_list = ref [] in
  for v = n - 1 downto 0 do
    if dirty.(v) then dirty_list := v :: !dirty_list
  done;
  let dirty = Array.of_list !dirty_list in
  { dirty; seeds = !seeds; affected = !num_dirty + List.length !seeds }

(* ------------------------------------------------------------------ *)
(* Printable form for repro lines                                      *)

let op_to_string = function
  | Insert { src; dst; weight } -> Printf.sprintf "i:%d-%d-%d" src dst weight
  | Delete { src; dst } -> Printf.sprintf "d:%d-%d" src dst
  | Reweight { src; dst; weight } -> Printf.sprintf "r:%d-%d-%d" src dst weight

let to_string (batch : batch) =
  String.concat "," (Array.to_list (Array.map op_to_string batch))

let op_of_string s =
  match String.split_on_char ':' s with
  | [ tag; rest ] -> (
      match (tag, String.split_on_char '-' rest) with
      | "i", [ a; b; c ] -> (
          match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
          | Some src, Some dst, Some weight -> Ok (Insert { src; dst; weight })
          | _ -> Error (Printf.sprintf "bad insert op %S" s))
      | "d", [ a; b ] -> (
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some src, Some dst -> Ok (Delete { src; dst })
          | _ -> Error (Printf.sprintf "bad delete op %S" s))
      | "r", [ a; b; c ] -> (
          match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
          | Some src, Some dst, Some weight -> Ok (Reweight { src; dst; weight })
          | _ -> Error (Printf.sprintf "bad reweight op %S" s))
      | _ -> Error (Printf.sprintf "unknown delta op %S" s))
  | _ -> Error (Printf.sprintf "unknown delta op %S" s)

let of_string s =
  if String.trim s = "" then Ok [||]
  else
    let parts = String.split_on_char ',' (String.trim s) in
    let rec go acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | p :: rest -> (
          match op_of_string p with
          | Ok op -> go (op :: acc) rest
          | Error _ as e -> e)
    in
    go [] parts
