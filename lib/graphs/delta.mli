(** Batched edge mutations and affected-set planning.

    A {!batch} is an ordered sequence of edge inserts, deletes, and
    reweights over a fixed vertex universe. {!apply} replays a batch
    against an immutable CSR and returns a {e fresh} CSR — the input is
    never mutated, which is what lets {!Versioned} pin old snapshots by
    reference. {!plan} computes the conservative affected set that
    incremental recompute ([Engine.run_incremental] and its consumers)
    re-seeds the priority structures from.

    Semantics per op:
    - [Insert] appends a (possibly parallel) edge [src -> dst] with the
      given positive weight.
    - [Delete] removes {e every} parallel copy of [src -> dst]; deleting
      an absent edge is a no-op.
    - [Reweight] sets the weight of every copy of [src -> dst]; on an
      absent edge it is a no-op.

    Ops within a batch apply in order (so [Delete] then [Insert] leaves
    exactly one copy). *)

type op =
  | Insert of { src : int; dst : int; weight : int }
  | Delete of { src : int; dst : int }
  | Reweight of { src : int; dst : int; weight : int }

type batch = op array

val op_src : op -> int
val op_dst : op -> int

(** [validate ~num_vertices batch] checks endpoints are in range and
    weights positive. *)
val validate : num_vertices:int -> batch -> (unit, string) result

(** [size batch] is the op count. *)
val size : batch -> int

(** [reverse batch] flips every op's endpoints — apply it to a transpose
    to keep it in sync with the forward graph. *)
val reverse : batch -> batch

(** [apply csr batch] materializes the mutated graph as a fresh CSR.
    Untouched adjacency lists are blit-copied; touched ones are replayed
    and re-sorted by target. The result carries no memoized degree cache
    (each version recomputes its own — the stale-cache hazard fix).
    @raise Invalid_argument on an invalid batch. *)
val apply : Csr.t -> batch -> Csr.t

(** The affected set of a batch relative to a previous shortest-distance
    vector (see [plan]). *)
type plan = {
  dirty : int array;
      (** vertices whose previous distance may no longer be achievable;
          callers reset these to [null] before re-seeding. Sorted
          ascending. The SSSP source is never dirty (positive weights). *)
  seeds : (int * int) list;
      (** [(vertex, candidate)] pairs: the clean-to-dirty boundary edges
          of the {e new} graph plus improving-op candidates into clean
          vertices. Feed each through [update_priority_min]. *)
  affected : int;  (** [|dirty| + |seeds|] — the fallback measure. *)
}

(** [plan ~old_csr ~new_csr batch ~dist ~null] computes the dirty closure
    over the old graph (a vertex is dirty when a removed/raised edge or a
    dirty predecessor supported its tight distance) and the seed
    candidates over the new graph. [dist] is the pre-mutation distance
    vector and is not modified; [null] is the "unreached" sentinel.
    Conservative: over-marking costs recomputation, never correctness. *)
val plan : old_csr:Csr.t -> new_csr:Csr.t -> batch -> dist:int array -> null:int -> plan

(** Printable form used by repro lines: ops joined by [","], each
    [i:src-dst-w], [d:src-dst], or [r:src-dst-w]. *)
val to_string : batch -> string

val of_string : string -> (batch, string) result
val op_to_string : op -> string
val op_of_string : string -> (op, string) result
