(* Ligra+-style delta/varint-compressed adjacency.

   Each vertex's neighbor list (sorted by destination id, as Csr builds it)
   is stored as a byte stream of (gap, weight) varint pairs:

   - the first destination is zigzag-encoded relative to the vertex id
     (neighbors cluster around their source after a locality-preserving
     reordering, so the delta is small and frequently one byte);
   - every later destination is encoded as the non-negative gap from its
     predecessor (0 for parallel edges);
   - each destination is followed by its weight as a plain varint.

   Byte offsets per vertex live in [starts] (n + 1 entries) and degrees in
   their own array: both are needed on hot paths (O(1) out_degree for the
   hybrid heuristic, random access for chunked sweeps) and together cost
   what one plain CSR offsets array did, while the edge payload shrinks
   from 16 bytes per edge to typically 2-4. *)

type t = {
  n : int;
  m : int;
  degrees : int array;
  starts : int array; (* byte offset of each vertex's stream; n + 1 entries *)
  data : Bytes.t;
}

(* ---- varint primitives (LEB128, low 7 bits first) ---- *)

let zigzag v = (v lsl 1) lxor (v asr (Sys.int_size - 1))
let unzigzag v = (v lsr 1) lxor (-(v land 1))

let rec write_varint buf v =
  if v < 0x80 then Buffer.add_char buf (Char.unsafe_chr v)
  else begin
    Buffer.add_char buf (Char.unsafe_chr (0x80 lor (v land 0x7f)));
    write_varint buf (v lsr 7)
  end

(* Decode one varint at [!pos], advancing it. The loop carries everything
   in registers; [Bytes.unsafe_get] keeps bounds checks off the per-edge
   path (offsets were validated at construction). *)
let[@inline] read_varint data pos =
  let b = Char.code (Bytes.unsafe_get data !pos) in
  incr pos;
  if b < 0x80 then b
  else begin
    let acc = ref (b land 0x7f) and shift = ref 7 in
    let continue = ref true in
    while !continue do
      let b = Char.code (Bytes.unsafe_get data !pos) in
      incr pos;
      acc := !acc lor ((b land 0x7f) lsl !shift);
      shift := !shift + 7;
      if b < 0x80 then continue := false
    done;
    !acc
  end

(* ---- construction ---- *)

let of_csr csr =
  let n = Csr.num_vertices csr in
  let m = Csr.num_edges csr in
  let degrees = Array.init n (fun u -> Csr.out_degree csr u) in
  let starts = Array.make (n + 1) 0 in
  let buf = Buffer.create (4 * m) in
  for u = 0 to n - 1 do
    starts.(u) <- Buffer.length buf;
    let prev = ref u and first = ref true in
    Csr.iter_out csr u (fun dst weight ->
        if !first then begin
          write_varint buf (zigzag (dst - u));
          first := false
        end
        else write_varint buf (dst - !prev);
        prev := dst;
        write_varint buf weight)
  done;
  starts.(n) <- Buffer.length buf;
  { n; m; degrees; starts; data = Buffer.to_bytes buf }

let unsafe_of_parts ~num_vertices ~num_edges ~degrees ~starts ~data =
  if Array.length degrees <> num_vertices then
    invalid_arg "Csr_compressed.unsafe_of_parts: degrees must have n entries";
  if Array.length starts <> num_vertices + 1 then
    invalid_arg "Csr_compressed.unsafe_of_parts: starts must have n + 1 entries";
  if num_vertices > 0 && starts.(num_vertices) <> Bytes.length data then
    invalid_arg "Csr_compressed.unsafe_of_parts: starts do not cover the data";
  { n = num_vertices; m = num_edges; degrees; starts; data }

(* ---- accessors ---- *)

let num_vertices g = g.n
let num_edges g = g.m
let out_degree g u = Array.unsafe_get g.degrees u
let out_degrees g = g.degrees
let data_bytes g = Bytes.length g.data
let degrees g = g.degrees
let starts g = g.starts
let data g = g.data

let iter_out g u f =
  let deg = Array.unsafe_get g.degrees u in
  if deg > 0 then begin
    let pos = ref (Array.unsafe_get g.starts u) in
    let data = g.data in
    let dst = ref (u + unzigzag (read_varint data pos)) in
    f !dst (read_varint data pos);
    for _ = 2 to deg do
      dst := !dst + read_varint data pos;
      f !dst (read_varint data pos)
    done
  end

let fold_out g u f acc =
  let acc = ref acc in
  iter_out g u (fun dst weight -> acc := f !acc dst weight);
  !acc

let to_csr g =
  let offsets = Array.make (g.n + 1) 0 in
  for u = 0 to g.n - 1 do
    offsets.(u + 1) <- offsets.(u) + g.degrees.(u)
  done;
  let targets = Array.make g.m 0 in
  let weights = Array.make g.m 0 in
  for u = 0 to g.n - 1 do
    let k = ref offsets.(u) in
    iter_out g u (fun dst weight ->
        targets.(!k) <- dst;
        weights.(!k) <- weight;
        incr k)
  done;
  Csr.unsafe_of_arrays ~num_vertices:g.n ~offsets ~targets ~weights
