(** A versioned graph: batched mutations over an immutable CSR with
    snapshot-isolated readers.

    Each {!commit} applies a {!Delta.batch} and mints a monotonically
    increasing version whose plain CSR is materialized immediately;
    derived layouts (transpose, compressed, the degree memo) stay lazy
    per version via {!Handle}. Readers {!pin} the snapshot they run
    against — a pinned version survives later commits and compactions
    untouched until its last reader {!release}s it, which is what gives
    in-flight queries snapshot isolation.

    {!compact} rebuilds every derived layout of the latest version
    eagerly on the calling thread (intended: a background thread), then
    swaps the prewarmed handle in only if no commit raced — so queries
    after a compaction find all caches hot without ever observing a
    half-built layout.

    Thread-safety: all operations here are mutex-guarded and may be
    called from any thread. Forcing a {e published} handle's lazy cells
    remains single-threaded by convention (the orchestrating/runner
    thread), exactly as {!Handle} documents. *)

type t

(** [create ?kind ?compact_every csr] starts at version 0.
    [compact_every] (default 4096) is the op count between compactions
    that {!should_compact} reports against. *)
val create : ?kind:Layout.kind -> ?compact_every:int -> Csr.t -> t

(** The latest committed version (0 after [create]). *)
val version : t -> int

(** The latest version's handle, without pinning it. Only safe to use
    ephemerally on the mutating thread; readers that outlive a commit
    must {!pin}. *)
val latest : t -> Handle.t

val num_vertices : t -> int
val kind : t -> Layout.kind

(** [commit t batch] applies [batch] to the latest version and returns
    the new version number. @raise Invalid_argument on an invalid batch. *)
val commit : t -> Delta.batch -> int

(** [pin t] pins the latest snapshot and returns its handle; pair with
    {!release}. The handle's {!Handle.version} names the pinned version. *)
val pin : t -> Handle.t

(** [pin_version t v] pins a specific live version ([None] when [v] has
    already been retired — i.e. superseded with no remaining readers). *)
val pin_version : t -> int -> Handle.t option

(** [release t handle] drops one pin on [handle]'s version. A superseded
    version is freed when its last pin drops.
    @raise Invalid_argument when the version is unknown or not pinned. *)
val release : t -> Handle.t -> unit

(** Versions currently pinned by at least one reader, ascending. *)
val pinned_versions : t -> int list

(** [batches_since t ~version] is the delta batches that lead from
    [version] to the latest version, in commit order — [Some [||]] when
    already latest, [None] when compaction has truncated the log short
    of [version] (callers then fall back to full recompute). *)
val batches_since : t -> version:int -> Delta.batch array option

(** Whether the ops committed since the last compaction reach the
    [compact_every] threshold. *)
val should_compact : t -> bool

(** [compact t] prewarms all derived layouts of the latest version
    outside the lock and swaps them in; returns [false] when a commit
    raced the build (caller may retry). Also truncates the delta log
    below the oldest pinned version and resets the op counter. *)
val compact : t -> bool

(** Number of completed compactions. *)
val compactions : t -> int

(** Ops committed since the last compaction. *)
val ops_pending : t -> int
