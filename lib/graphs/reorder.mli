(** Vertex reordering passes.

    A pass computes a permutation that relabels vertices for locality:
    hub-first ({!degree}) for power-law graphs, BFS discovery order
    ({!bfs}) to cluster neighbors, Hilbert-curve order ({!hilbert}) for
    road networks with planar coordinates. The permutation remaps edge
    lists, coordinates, and vertex ids, so orderings compose with either
    storage layout; {!unapply_values} maps per-vertex results back to the
    original ids. [apply]/[unapply] round-trips are the identity
    (property-tested). *)

type kind =
  | Identity
  | Degree
  | Bfs
  | Hilbert

(** A permutation pair: [apply_vertex] is old id -> new id,
    [unapply_vertex] its inverse. *)
type t

val kind_to_string : kind -> string

(** [kind_of_string s] parses ["none"|"degree"|"bfs"|"hilbert"]. *)
val kind_of_string : string -> (kind, string) result

val all_kinds : kind list

val identity : int -> t

(** [degree g] orders vertices by descending out-degree, ties by id. *)
val degree : Csr.t -> t

(** [bfs g] orders vertices by BFS discovery from vertex 0; vertices in
    later components keep their relative order. *)
val bfs : Csr.t -> t

(** [hilbert coords] orders vertices along a Hilbert curve over their
    planar coordinates (2^16 grid cells per axis), ties by id. *)
val hilbert : Coords.t -> t

(** [of_kind kind ~csr ~coords] dispatches; [Hilbert] fails without
    matching coordinates. *)
val of_kind : kind -> csr:Csr.t -> coords:Coords.t option -> (t, string) result

val num_vertices : t -> int
val apply_vertex : t -> int -> int
val unapply_vertex : t -> int -> int

(** [apply_edge_list t el] relabels both endpoints of every edge. *)
val apply_edge_list : t -> Edge_list.t -> Edge_list.t

val apply_coords : t -> Coords.t -> Coords.t

(** [unapply_values t a] maps a per-vertex result array indexed by new ids
    back to original-id indexing; [apply_values] is the inverse. *)
val unapply_values : t -> 'a array -> 'a array

val apply_values : t -> 'a array -> 'a array
