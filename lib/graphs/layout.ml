(* The layout seam between graph storage and the traversal kernels.

   [S] is what a sweep needs from adjacency storage — vertex count, O(1)
   degree lookup, and an in-register neighbor iterator. The traversal core
   functorizes its push/pull kernels over it, so each layout gets fully
   specialized loops instead of a per-edge branch; [t] packs the two
   concrete layouts for call sites that pick at runtime (one dispatch per
   sweep, not per edge). *)

module type S = sig
  type g

  val num_vertices : g -> int
  val out_degree : g -> int -> int

  (** Borrowed per-vertex out-degrees for the hybrid degree-sum reduce. *)
  val out_degrees : g -> int array

  val iter_out : g -> int -> (int -> int -> unit) -> unit
end

type kind =
  | Plain
  | Compressed

type t =
  | Plain_graph of Csr.t
  | Compressed_graph of Csr_compressed.t

module Plain_layout : S with type g = Csr.t = struct
  type g = Csr.t

  let num_vertices = Csr.num_vertices
  let out_degree = Csr.out_degree
  let out_degrees = Csr.out_degrees_cached
  let iter_out = Csr.iter_out
end

module Compressed_layout : S with type g = Csr_compressed.t = struct
  type g = Csr_compressed.t

  let num_vertices = Csr_compressed.num_vertices
  let out_degree = Csr_compressed.out_degree
  let out_degrees = Csr_compressed.out_degrees
  let iter_out = Csr_compressed.iter_out
end

let kind_to_string = function Plain -> "plain" | Compressed -> "compressed"

let kind_of_string = function
  | "plain" -> Ok Plain
  | "compressed" -> Ok Compressed
  | s -> Error (Printf.sprintf "unknown layout %S (plain|compressed)" s)

let all_kinds = [ Plain; Compressed ]

let of_csr kind csr =
  match kind with
  | Plain -> Plain_graph csr
  | Compressed -> Compressed_graph (Csr_compressed.of_csr csr)

let kind = function Plain_graph _ -> Plain | Compressed_graph _ -> Compressed

let num_vertices = function
  | Plain_graph g -> Csr.num_vertices g
  | Compressed_graph g -> Csr_compressed.num_vertices g

let num_edges = function
  | Plain_graph g -> Csr.num_edges g
  | Compressed_graph g -> Csr_compressed.num_edges g

let out_degree t u =
  match t with
  | Plain_graph g -> Csr.out_degree g u
  | Compressed_graph g -> Csr_compressed.out_degree g u

let iter_out t u f =
  match t with
  | Plain_graph g -> Csr.iter_out g u f
  | Compressed_graph g -> Csr_compressed.iter_out g u f

let to_csr = function
  | Plain_graph g -> g
  | Compressed_graph g -> Csr_compressed.to_csr g
