type t = {
  n : int;
  offsets : int array;
  targets : int array;
  weights : int array;
  (* Memoized by [out_degrees_cached]; borrowed by the hybrid degree-sum
     heuristic, which reads it once per frontier member per round. *)
  mutable degrees : int array option;
}

let of_edge_list (el : Edge_list.t) =
  let n = el.Edge_list.num_vertices in
  let edges = el.Edge_list.edges in
  let m = Array.length edges in
  let degrees = Array.make n 0 in
  Array.iter (fun e -> degrees.(e.Edge_list.src) <- degrees.(e.Edge_list.src) + 1) edges;
  let offsets = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    offsets.(u + 1) <- offsets.(u) + degrees.(u)
  done;
  let targets = Array.make m 0 in
  let weights = Array.make m 0 in
  let cursor = Array.copy offsets in
  (* Stable fill, then sort each neighbor list by target id so lookups can
     binary-search and traversals are cache-friendly. *)
  Array.iter
    (fun { Edge_list.src; dst; weight } ->
      let slot = cursor.(src) in
      targets.(slot) <- dst;
      weights.(slot) <- weight;
      cursor.(src) <- slot + 1)
    edges;
  for u = 0 to n - 1 do
    let lo = offsets.(u) and hi = offsets.(u + 1) in
    if hi - lo > 1 then begin
      let pairs = Array.init (hi - lo) (fun i -> (targets.(lo + i), weights.(lo + i))) in
      Array.sort compare pairs;
      Array.iteri
        (fun i (dst, w) ->
          targets.(lo + i) <- dst;
          weights.(lo + i) <- w)
        pairs
    end
  done;
  { n; offsets; targets; weights; degrees = None }

let unsafe_of_arrays ~num_vertices ~offsets ~targets ~weights =
  if Array.length offsets <> num_vertices + 1 then
    invalid_arg "Csr.unsafe_of_arrays: offsets must have n + 1 entries";
  if Array.length targets <> Array.length weights then
    invalid_arg "Csr.unsafe_of_arrays: targets/weights length mismatch";
  if num_vertices > 0 && offsets.(num_vertices) <> Array.length targets then
    invalid_arg "Csr.unsafe_of_arrays: offsets do not cover the edge arrays";
  { n = num_vertices; offsets; targets; weights; degrees = None }

let offsets g = g.offsets
let targets g = g.targets
let weights g = g.weights
let num_vertices g = g.n
let num_edges g = Array.length g.targets
let out_degree g u = g.offsets.(u + 1) - g.offsets.(u)

let iter_out g u f =
  for i = g.offsets.(u) to g.offsets.(u + 1) - 1 do
    f (Array.unsafe_get g.targets i) (Array.unsafe_get g.weights i)
  done

let fold_out g u f acc =
  let acc = ref acc in
  for i = g.offsets.(u) to g.offsets.(u + 1) - 1 do
    acc := f !acc (Array.unsafe_get g.targets i) (Array.unsafe_get g.weights i)
  done;
  !acc

let edge_range g u = (g.offsets.(u), g.offsets.(u + 1))
let edge_target g i = Array.unsafe_get g.targets i
let edge_weight g i = Array.unsafe_get g.weights i

let to_edge_list g =
  let m = num_edges g in
  let edges = Array.make m { Edge_list.src = 0; dst = 0; weight = 1 } in
  let k = ref 0 in
  for u = 0 to g.n - 1 do
    for i = g.offsets.(u) to g.offsets.(u + 1) - 1 do
      edges.(!k) <- { Edge_list.src = u; dst = g.targets.(i); weight = g.weights.(i) };
      incr k
    done
  done;
  { Edge_list.num_vertices = g.n; edges }

let transpose g = of_edge_list (Edge_list.reverse (to_edge_list g))

let max_weight g = Array.fold_left max 0 g.weights

let out_degrees g = Array.init g.n (fun u -> out_degree g u)

let out_degrees_cached g =
  match g.degrees with
  | Some d -> d
  | None ->
      let d = out_degrees g in
      g.degrees <- Some d;
      d

let mem_edge g u v =
  let rec search lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      let t = g.targets.(mid) in
      if t = v then true else if t < v then search (mid + 1) hi else search lo mid
  in
  search g.offsets.(u) g.offsets.(u + 1)
