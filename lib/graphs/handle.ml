(* A graph plus every derived form the engines keep re-deriving.

   Before this existed, each run rebuilt the transpose (an O(m log m)
   counting sort) and each compressed sweep would have re-encoded the
   byte streams. The handle owns one lazy cell per derived form, so a
   checker sweeping hundreds of schedules over one graph pays for each
   conversion exactly once. Lazy cells are forced from the orchestrating
   thread (engine setup, never inside a parallel episode), so the
   non-thread-safety of [Lazy] is not a hazard here. *)

type t = {
  csr : Csr.t;
  kind : Layout.kind;
  version : int;
  compressed : Csr_compressed.t Lazy.t;
  transpose_csr : Csr.t Lazy.t;
  transpose_compressed : Csr_compressed.t Lazy.t;
}

let create ?(kind = Layout.Plain) ?(version = 0) csr =
  let transpose_csr = lazy (Csr.transpose csr) in
  {
    csr;
    kind;
    version;
    compressed = lazy (Csr_compressed.of_csr csr);
    transpose_csr;
    transpose_compressed =
      lazy (Csr_compressed.of_csr (Lazy.force transpose_csr));
  }

let of_edge_list ?kind ?version el = create ?kind ?version (Csr.of_edge_list el)
let csr t = t.csr
let kind t = t.kind
let version t = t.version
let num_vertices t = Csr.num_vertices t.csr
let num_edges t = Csr.num_edges t.csr
let with_kind kind t = { t with kind }
let compressed t = Lazy.force t.compressed
let transpose_csr t = Lazy.force t.transpose_csr

(* Force every lazy cell plus the CSR degree memo. Called by [Versioned]'s
   compaction on a handle it has not yet published, so the forcing happens
   on one thread and published handles are read-only thereafter. *)
let prewarm t =
  ignore (Lazy.force t.transpose_csr);
  ignore (Csr.out_degrees_cached t.csr);
  if t.kind = Layout.Compressed then begin
    ignore (Lazy.force t.compressed);
    ignore (Lazy.force t.transpose_compressed)
  end

let graph t =
  match t.kind with
  | Layout.Plain -> Layout.Plain_graph t.csr
  | Layout.Compressed -> Layout.Compressed_graph (Lazy.force t.compressed)

let transpose t =
  match t.kind with
  | Layout.Plain -> Layout.Plain_graph (Lazy.force t.transpose_csr)
  | Layout.Compressed ->
      Layout.Compressed_graph (Lazy.force t.transpose_compressed)
