(* Vertex reordering passes.

   A permutation relabels vertices so that ids adjacent in memory are
   likely to be touched together, shrinking both cache misses (plain CSR)
   and delta widths (compressed CSR, whose varints narrow as neighbor ids
   cluster). Three classic passes:

   - [degree]: hub vertices first (descending out-degree, stable on id).
     Power-law graphs touch hubs constantly; packing them into the first
     cache lines of the offsets/degree arrays keeps them resident.
   - [bfs]: breadth-first discovery order from vertex 0 (unreached
     vertices keep their relative order at the end). Neighbors land near
     each other, which is what gap encoding wants.
   - [hilbert]: sort by Hilbert-curve index of the planar coordinates —
     the road-network pass, where spatial locality is graph locality.

   A pass returns the permutation pair (old->new, new->old); applying it
   to edge lists, coords, and vertex ids composes with either layout. *)

type kind =
  | Identity
  | Degree
  | Bfs
  | Hilbert

type t = {
  perm : int array; (* old id -> new id *)
  inv : int array; (* new id -> old id *)
}

let kind_to_string = function
  | Identity -> "none"
  | Degree -> "degree"
  | Bfs -> "bfs"
  | Hilbert -> "hilbert"

let kind_of_string = function
  | "none" -> Ok Identity
  | "degree" -> Ok Degree
  | "bfs" -> Ok Bfs
  | "hilbert" -> Ok Hilbert
  | s -> Error (Printf.sprintf "unknown reorder %S (none|degree|bfs|hilbert)" s)

let all_kinds = [ Identity; Degree; Bfs; Hilbert ]

let of_inv inv =
  let n = Array.length inv in
  let perm = Array.make n (-1) in
  Array.iteri
    (fun new_id old_id ->
      if old_id < 0 || old_id >= n || perm.(old_id) >= 0 then
        invalid_arg "Reorder.of_inv: not a permutation";
      perm.(old_id) <- new_id)
    inv;
  { perm; inv }

let identity n = of_inv (Array.init n (fun i -> i))

let degree csr =
  let n = Csr.num_vertices csr in
  let order = Array.init n (fun i -> i) in
  (* Descending degree; ties keep ascending id so the pass is stable and
     deterministic across runs. *)
  Array.sort
    (fun a b ->
      match compare (Csr.out_degree csr b) (Csr.out_degree csr a) with
      | 0 -> compare a b
      | c -> c)
    order;
  of_inv order

let bfs csr =
  let n = Csr.num_vertices csr in
  let inv = Array.make n (-1) in
  let seen = Array.make n false in
  let queue = Queue.create () in
  let next = ref 0 in
  let visit v =
    if not seen.(v) then begin
      seen.(v) <- true;
      Queue.add v queue
    end
  in
  let drain () =
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      inv.(!next) <- u;
      incr next;
      Csr.iter_out csr u (fun dst _ -> visit dst)
    done
  in
  if n > 0 then visit 0;
  drain ();
  (* Components unreachable from 0 keep their relative id order. *)
  for v = 0 to n - 1 do
    if not seen.(v) then begin
      visit v;
      drain ()
    end
  done;
  of_inv inv

(* Hilbert d-index of cell (x, y) on a 2^order grid — the classic
   bit-interleaving walk (Wikipedia's xy2d), iterative from the top bit. *)
let hilbert_d ~order x y =
  let d = ref 0 in
  let x = ref x and y = ref y in
  let s = ref (1 lsl (order - 1)) in
  while !s > 0 do
    let rx = if !x land !s > 0 then 1 else 0 in
    let ry = if !y land !s > 0 then 1 else 0 in
    d := !d + (!s * !s * ((3 * rx) lxor ry));
    (* Rotate the quadrant so the curve stays continuous. *)
    if ry = 0 then begin
      if rx = 1 then begin
        x := !s - 1 - !x;
        y := !s - 1 - !y
      end;
      let tmp = !x in
      x := !y;
      y := tmp
    end;
    s := !s / 2
  done;
  !d

let hilbert coords =
  let n = Coords.num_vertices coords in
  if n = 0 then identity 0
  else begin
    let order = 16 in
    let side = 1 lsl order in
    let minx = ref (Coords.x coords 0) and maxx = ref (Coords.x coords 0) in
    let miny = ref (Coords.y coords 0) and maxy = ref (Coords.y coords 0) in
    for v = 1 to n - 1 do
      let x = Coords.x coords v and y = Coords.y coords v in
      if x < !minx then minx := x;
      if x > !maxx then maxx := x;
      if y < !miny then miny := y;
      if y > !maxy then maxy := y
    done;
    let cell lo hi v =
      if hi -. lo <= 0. then 0
      else
        min (side - 1)
          (max 0 (int_of_float (float_of_int (side - 1) *. ((v -. lo) /. (hi -. lo)))))
    in
    let keys =
      Array.init n (fun v ->
          hilbert_d ~order
            (cell !minx !maxx (Coords.x coords v))
            (cell !miny !maxy (Coords.y coords v)))
    in
    let order_arr = Array.init n (fun i -> i) in
    Array.sort
      (fun a b ->
        match compare keys.(a) keys.(b) with 0 -> compare a b | c -> c)
      order_arr;
    of_inv order_arr
  end

let num_vertices t = Array.length t.perm
let apply_vertex t v = t.perm.(v)
let unapply_vertex t v = t.inv.(v)

let apply_edge_list t (el : Edge_list.t) =
  if el.Edge_list.num_vertices <> num_vertices t then
    invalid_arg "Reorder.apply_edge_list: size mismatch";
  {
    el with
    Edge_list.edges =
      Array.map
        (fun e ->
          {
            e with
            Edge_list.src = t.perm.(e.Edge_list.src);
            dst = t.perm.(e.Edge_list.dst);
          })
        el.Edge_list.edges;
  }

let apply_coords t coords =
  if Coords.num_vertices coords <> num_vertices t then
    invalid_arg "Reorder.apply_coords: size mismatch";
  let n = num_vertices t in
  Coords.create
    (Array.init n (fun v -> Coords.x coords t.inv.(v)))
    (Array.init n (fun v -> Coords.y coords t.inv.(v)))

(* Per-vertex result arrays (distances, coreness) computed on the
   reordered graph, mapped back to original ids. *)
let unapply_values t values =
  if Array.length values <> num_vertices t then
    invalid_arg "Reorder.unapply_values: size mismatch";
  Array.init (Array.length values) (fun old_id -> values.(t.perm.(old_id)))

let apply_values t values =
  if Array.length values <> num_vertices t then
    invalid_arg "Reorder.apply_values: size mismatch";
  Array.init (Array.length values) (fun new_id -> values.(t.inv.(new_id)))

let of_kind kind ~csr ~coords =
  match kind with
  | Identity -> Ok (identity (Csr.num_vertices csr))
  | Degree -> Ok (degree csr)
  | Bfs -> Ok (bfs csr)
  | Hilbert -> (
      match coords with
      | Some c when Coords.num_vertices c = Csr.num_vertices csr ->
          Ok (hilbert c)
      | Some _ -> Error "hilbert reorder: coords/vertex count mismatch"
      | None -> Error "hilbert reorder requires vertex coordinates")
