(** Compressed-sparse-row weighted digraphs, the in-memory representation
    every engine traverses (the [WGraph] of the paper's generated code). *)

type t

(** [of_edge_list el] builds the CSR form with a counting sort; neighbor
    lists are ordered by destination id. *)
val of_edge_list : Edge_list.t -> t

(** [unsafe_of_arrays ~num_vertices ~offsets ~targets ~weights] adopts the
    flat arrays directly (the binary-format loader's fast path). Only array
    lengths and the final offset are validated: the caller promises that
    [offsets] is monotone and that every neighbor list is sorted by
    destination id, as {!of_edge_list} would produce. *)
val unsafe_of_arrays :
  num_vertices:int ->
  offsets:int array ->
  targets:int array ->
  weights:int array ->
  t

(** [offsets g] / [targets g] / [weights g] borrow the underlying flat
    arrays (for serialization and layout conversion). Do not mutate. *)
val offsets : t -> int array

val targets : t -> int array
val weights : t -> int array

(** [num_vertices g] is |V|. *)
val num_vertices : t -> int

(** [num_edges g] is the number of directed edges. *)
val num_edges : t -> int

(** [out_degree g u] is the number of outgoing edges of [u]. *)
val out_degree : t -> int -> int

(** [iter_out g u f] applies [f dst weight] to every outgoing edge of [u]. *)
val iter_out : t -> int -> (int -> int -> unit) -> unit

(** [fold_out g u f acc] folds over the outgoing edges of [u]. *)
val fold_out : t -> int -> ('a -> int -> int -> 'a) -> 'a -> 'a

(** [edge_range g u] is the half-open index range [(lo, hi)] of [u]'s edges
    in the flat arrays, for chunked traversal. *)
val edge_range : t -> int -> int * int

(** [edge_target g i] and [edge_weight g i] read the flat edge arrays at
    index [i] in [0, num_edges). *)
val edge_target : t -> int -> int

val edge_weight : t -> int -> int

(** [transpose g] reverses every edge (used by DensePull traversal). *)
val transpose : t -> t

(** [to_edge_list g] recovers the edge list. *)
val to_edge_list : t -> Edge_list.t

(** [max_weight g] is the largest edge weight, or [0] for an edgeless
    graph. *)
val max_weight : t -> int

(** [out_degrees g] is a fresh array of all out-degrees. *)
val out_degrees : t -> int array

(** [out_degrees_cached g] is the same array memoized inside the graph:
    computed on first use, then borrowed by every later call. Hot paths
    (the hybrid direction heuristic) read it once per frontier member per
    round, so they must not pay a fresh allocation each time. Do not
    mutate the result. *)
val out_degrees_cached : t -> int array

(** [mem_edge g u v] tests whether a [u -> v] edge exists (binary search). *)
val mem_edge : t -> int -> int -> bool
