(** Delta/varint-compressed adjacency (Ligra+ style).

    Neighbor lists are byte streams: the first destination zigzag-delta
    encoded against the vertex id, later destinations as gaps from their
    predecessor, each followed by its weight, all as LEB128 varints. The
    edge payload typically shrinks 4-8x against the plain CSR's 16 bytes
    per edge; degrees and per-vertex byte offsets stay as int arrays so
    [out_degree] and chunked sweeps remain O(1).

    {!iter_out} decodes in registers — no neighbor array is ever
    materialized — which is what lets the pull kernel consume compressed
    adjacency at full speed. Encoding requires what {!Csr.of_edge_list}
    guarantees: neighbor lists sorted by destination id. *)

type t

(** [of_csr g] compresses a plain CSR. [to_csr] decodes it back; the
    round-trip is the identity (property-tested). *)
val of_csr : Csr.t -> t

val to_csr : t -> Csr.t

val num_vertices : t -> int
val num_edges : t -> int
val out_degree : t -> int -> int

(** [out_degrees g] borrows the per-vertex degree array. Do not mutate. *)
val out_degrees : t -> int array

(** [iter_out g u f] applies [f dst weight] to every outgoing edge of [u],
    decoding the varint stream in registers. *)
val iter_out : t -> int -> (int -> int -> unit) -> unit

val fold_out : t -> int -> ('a -> int -> int -> 'a) -> 'a -> 'a

(** [data_bytes g] is the size of the compressed edge payload in bytes
    (compression-ratio reporting). *)
val data_bytes : t -> int

(** {2 Serialization internals} — borrowed parts for the binary graph
    format. Do not mutate. *)

val degrees : t -> int array
val starts : t -> int array
val data : t -> Bytes.t

(** [unsafe_of_parts] adopts previously serialized parts; only lengths and
    the final byte offset are validated. *)
val unsafe_of_parts :
  num_vertices:int ->
  num_edges:int ->
  degrees:int array ->
  starts:int array ->
  data:Bytes.t ->
  t
