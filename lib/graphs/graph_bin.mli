(** Versioned binary graph format, loaded via [Unix.map_file].

    A ["GRAPHBIN"]-tagged, little-endian container holding a prebuilt CSR
    (plain or compressed) so large graphs load at memory-bandwidth speed
    instead of re-parsing an edge-list text file. The 64-byte header
    records magic, version, an endianness marker, the layout code, and
    the vertex/edge counts; see the spec in docs/INTERNALS.md. Loaders
    reject unknown versions, bad magic, foreign endianness, and truncated
    payloads with a descriptive [Failure]. *)

(** [save path ?layout csr] writes [csr] in the given on-disk layout
    (default [Plain]; [Compressed] encodes the varint form first). *)
val save : string -> ?layout:Layout.kind -> Csr.t -> unit

(** [load path] maps the file and returns the graph in its on-disk
    layout. Raises [Failure] on malformed input. *)
val load : string -> Layout.t

(** [load path |> Layout.to_csr], for consumers that need the plain CSR. *)
val load_csr : string -> Csr.t

(** [is_graph_bin path] sniffs the 8-byte magic; false for unreadable or
    short files. *)
val is_graph_bin : string -> bool
