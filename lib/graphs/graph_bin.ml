(* Versioned binary graph container, loaded via mmap.

   Multi-million-vertex graphs should load in milliseconds, not re-parse
   an edge-list text file (integer parsing + a counting sort per load).
   The format stores the already-built CSR arrays — plain or compressed —
   so loading is one [Unix.map_file] plus a straight-line blit into OCaml
   arrays, bounded by memory bandwidth rather than parsing.

   Layout (all multi-byte fields little-endian; see docs/INTERNALS.md):

     bytes  0..7   magic "GRAPHBIN"
     bytes  8..15  u64 version (currently 1)
     bytes 16..23  u64 endianness marker 0x0102030405060708
     bytes 24..31  u64 layout: 0 = plain CSR, 1 = compressed CSR
     bytes 32..39  u64 n (vertices)
     bytes 40..47  u64 m (edges)
     bytes 48..55  u64 aux: 0 for plain; compressed-data byte length
     bytes 56..63  u64 reserved (0)

   Plain payload:       offsets[n+1] targets[m] weights[m], each i64 LE.
   Compressed payload:  degrees[n] starts[n+1] (i64 LE), then the varint
                        byte stream ([aux] bytes).

   Endianness rule: the payload is always little-endian on disk. The
   loader byte-swaps on big-endian hosts; the marker field exists so a
   v1 file written by a hypothetical BE writer is rejected loudly instead
   of decoded as garbage. Version rule: readers reject any version they
   do not know; additions must bump the version. *)

let magic = "GRAPHBIN"
let version = 1
let endian_marker = 0x0102030405060708L
let header_bytes = 64
let layout_code = function Layout.Plain -> 0 | Layout.Compressed -> 1

let invalid path msg = failwith (Printf.sprintf "%s: %s" path msg)

(* ---- writing ---- *)

(* Buffered little-endian writer: one [Bytes] chunk reused across the
   whole array so huge graphs do not allocate per element. *)
let write_int_array oc arr =
  let chunk_elts = 8192 in
  let buf = Bytes.create (8 * chunk_elts) in
  let len = Array.length arr in
  let pos = ref 0 in
  while !pos < len do
    let count = min chunk_elts (len - !pos) in
    for i = 0 to count - 1 do
      Bytes.set_int64_le buf (8 * i) (Int64.of_int arr.(!pos + i))
    done;
    output_bytes oc (Bytes.sub buf 0 (8 * count));
    pos := !pos + count
  done

let write_header oc ~layout ~n ~m ~aux =
  let h = Bytes.make header_bytes '\000' in
  Bytes.blit_string magic 0 h 0 8;
  Bytes.set_int64_le h 8 (Int64.of_int version);
  Bytes.set_int64_le h 16 endian_marker;
  Bytes.set_int64_le h 24 (Int64.of_int (layout_code layout));
  Bytes.set_int64_le h 32 (Int64.of_int n);
  Bytes.set_int64_le h 40 (Int64.of_int m);
  Bytes.set_int64_le h 48 (Int64.of_int aux);
  output_bytes oc h

let save path ?(layout = Layout.Plain) csr =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let n = Csr.num_vertices csr and m = Csr.num_edges csr in
      match layout with
      | Layout.Plain ->
          write_header oc ~layout ~n ~m ~aux:0;
          write_int_array oc (Csr.offsets csr);
          write_int_array oc (Csr.targets csr);
          write_int_array oc (Csr.weights csr)
      | Layout.Compressed ->
          let c = Csr_compressed.of_csr csr in
          let data = Csr_compressed.data c in
          write_header oc ~layout ~n ~m ~aux:(Bytes.length data);
          write_int_array oc (Csr_compressed.degrees c);
          write_int_array oc (Csr_compressed.starts c);
          output_bytes oc data)

(* ---- loading ---- *)

let get_u64_le b off =
  let v = Bytes.get_int64_le b off in
  match Int64.unsigned_to_int v with
  | Some v -> v
  | None -> failwith "field out of int range"

let swap64 v =
  let open Int64 in
  let b k = shift_left (logand (shift_right_logical v (k * 8)) 0xFFL) ((7 - k) * 8) in
  logor (b 0)
    (logor (b 1)
       (logor (b 2) (logor (b 3) (logor (b 4) (logor (b 5) (logor (b 6) (b 7)))))))

(* One i64 Bigarray view over the whole payload region (Unix.map_file
   handles non-page-aligned [pos] internally), copied into int arrays with
   a straight swap-free loop on little-endian hosts. *)
let copy_ints (map : (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t)
    ~off ~len =
  let swap = Sys.big_endian in
  Array.init len (fun i ->
      let v = Bigarray.Array1.unsafe_get map (off + i) in
      Int64.to_int (if swap then swap64 v else v))

let load path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let size = (Unix.fstat fd).Unix.st_size in
      if size < header_bytes then invalid path "not a graph binary (too short)";
      let header = Bytes.create header_bytes in
      let read = Unix.read fd header 0 header_bytes in
      if read <> header_bytes then invalid path "short header read";
      if Bytes.sub_string header 0 8 <> magic then
        invalid path "bad magic (not a GRAPHBIN file)";
      let v = get_u64_le header 8 in
      if v <> version then
        invalid path (Printf.sprintf "unsupported version %d (expected %d)" v version);
      if Bytes.get_int64_le header 16 <> endian_marker then
        invalid path "endianness marker mismatch (payload not little-endian)";
      let layout = get_u64_le header 24 in
      let n = get_u64_le header 32 in
      let m = get_u64_le header 40 in
      let aux = get_u64_le header 48 in
      let need_payload words extra =
        let need = header_bytes + (8 * words) + extra in
        if size < need then
          invalid path
            (Printf.sprintf "truncated payload (%d bytes, need %d)" size need)
      in
      let map_words words =
        Bigarray.array1_of_genarray
          (Unix.map_file fd ~pos:(Int64.of_int header_bytes) Bigarray.int64
             Bigarray.c_layout false [| words |])
      in
      match layout with
      | 0 ->
          let words = n + 1 + (2 * m) in
          need_payload words 0;
          let map = map_words words in
          let offsets = copy_ints map ~off:0 ~len:(n + 1) in
          let targets = copy_ints map ~off:(n + 1) ~len:m in
          let weights = copy_ints map ~off:(n + 1 + m) ~len:m in
          Layout.Plain_graph
            (Csr.unsafe_of_arrays ~num_vertices:n ~offsets ~targets ~weights)
      | 1 ->
          let words = n + (n + 1) in
          need_payload words aux;
          let map = map_words words in
          let degrees = copy_ints map ~off:0 ~len:n in
          let starts = copy_ints map ~off:n ~len:(n + 1) in
          let data = Bytes.create aux in
          if aux > 0 then begin
            let bytes_map =
              Bigarray.array1_of_genarray
                (Unix.map_file fd
                   ~pos:(Int64.of_int (header_bytes + (8 * words)))
                   Bigarray.char Bigarray.c_layout false [| aux |])
            in
            for i = 0 to aux - 1 do
              Bytes.unsafe_set data i (Bigarray.Array1.unsafe_get bytes_map i)
            done
          end;
          Layout.Compressed_graph
            (Csr_compressed.unsafe_of_parts ~num_vertices:n ~num_edges:m
               ~degrees ~starts ~data)
      | l -> invalid path (Printf.sprintf "unknown layout code %d" l))

let load_csr path = Layout.to_csr (load path)

let is_graph_bin path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          match really_input_string ic 8 with
          | s -> s = magic
          | exception End_of_file -> false)
