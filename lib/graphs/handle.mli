(** A graph handle: one CSR plus lazily cached derived forms.

    The transpose (needed by every pull-direction sweep) and the
    compressed layouts are built on first use and cached for the handle's
    lifetime, so repeated runs — a benchmark loop, the differential
    checker's schedule sweep — stop rebuilding them per run. The handle
    also carries the {!Layout.kind} its consumers should traverse with;
    {!with_kind} re-views the same graph (and shared caches) under the
    other layout.

    Laziness is not thread-safe: force-points all sit on the orchestrating
    thread (engine setup), never inside a parallel episode. *)

type t

(** [create ?kind ?version csr] wraps a CSR ([kind] defaults to [Plain],
    [version] to [0]). The version tags which graph snapshot the handle's
    caches belong to: every mutation commit mints a {e new} handle around
    a fresh CSR, so the cached transpose/compressed views and the CSR's
    memoized degree array can never outlive the graph they were derived
    from (the stale-cache hazard). *)
val create : ?kind:Layout.kind -> ?version:int -> Csr.t -> t

val of_edge_list : ?kind:Layout.kind -> ?version:int -> Edge_list.t -> t

(** The plain CSR, always available without decoding. *)
val csr : t -> Csr.t

val kind : t -> Layout.kind

(** The snapshot version this handle (and all its caches) was built from.
    [0] for handles created outside {!Versioned}. *)
val version : t -> int

(** [prewarm t] eagerly forces the transpose (and, for [Compressed]-kind
    handles, both compressed forms) plus the CSR degree memo. Only safe
    while [t] is private to one thread — {!Versioned} compaction uses it
    before publishing a handle. *)
val prewarm : t -> unit
val num_vertices : t -> int
val num_edges : t -> int

(** [with_kind kind t] shares [t]'s graph and caches under another
    layout kind. *)
val with_kind : Layout.kind -> t -> t

(** [graph t] is the forward graph in the handle's layout (cached). *)
val graph : t -> Layout.t

(** [transpose t] is the reversed graph in the handle's layout, built on
    first use and cached — pull sweeps and checkers share one transpose
    per handle. *)
val transpose : t -> Layout.t

(** [transpose_csr t] is the cached plain transpose (for consumers that
    need CSR access regardless of the handle's kind). *)
val transpose_csr : t -> Csr.t

(** [compressed t] is the cached compressed form of the forward graph. *)
val compressed : t -> Csr_compressed.t
