type 'a t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  items : 'a Queue.t;
  capacity : int;
  mutable closed : bool;
}

let create ~capacity () =
  if capacity < 1 then invalid_arg "Request_queue.create: capacity < 1";
  {
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    capacity;
    closed = false;
  }

let capacity t = t.capacity

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let length t = with_lock t (fun () -> Queue.length t.items)

let try_push t x =
  with_lock t (fun () ->
      if t.closed || Queue.length t.items >= t.capacity then false
      else begin
        Queue.add x t.items;
        Condition.signal t.nonempty;
        true
      end)

(* Condition variables have no native timed wait; a closing or pushing
   thread signals, and a dedicated waiter re-checks the clock. To keep
   the implementation dependency-free the timeout is approximated by
   polling at a fine grain only while empty — the queue is the server's
   idle loop, so a 10 ms granularity costs nothing measurable and the
   push path stays a plain signal. *)
let poll_interval = 0.01

let pop_batch t ~max ~timeout_s =
  if max < 1 then invalid_arg "Request_queue.pop_batch: max < 1";
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec wait () =
    if Queue.is_empty t.items && not t.closed then begin
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0. then []
      else begin
        (* Drop the lock while sleeping so producers can push. *)
        Mutex.unlock t.mutex;
        Thread.delay (Float.min poll_interval remaining);
        Mutex.lock t.mutex;
        wait ()
      end
    end
    else begin
      let batch = ref [] in
      let n = ref 0 in
      while (not (Queue.is_empty t.items)) && !n < max do
        batch := Queue.take t.items :: !batch;
        incr n
      done;
      List.rev !batch
    end
  in
  with_lock t wait

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let is_closed t = with_lock t (fun () -> t.closed)
