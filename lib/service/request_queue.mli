(** The service's bounded admission queue.

    Multi-producer (one thread per client connection), single-consumer
    (the batcher loop). Admission control is the whole point: {!try_push}
    never blocks — a full queue refuses the item and the caller answers
    [rejected] immediately, so a traffic spike degrades into fast
    rejections instead of unbounded memory growth and collapsing tail
    latency. Blocking happens only on the consumer side, in
    {!pop_batch}, and only while the queue is empty.

    The concurrency invariants this structure must uphold are named and
    tested in docs/SERVICE.md §6 (I1–I3). *)

type 'a t

(** [create ~capacity ()] is an empty queue admitting at most [capacity]
    items. Raises [Invalid_argument] when [capacity < 1]. *)
val create : capacity:int -> unit -> 'a t

val capacity : 'a t -> int

(** [length t] is the current depth (racy but exact under the mutex). *)
val length : 'a t -> int

(** [try_push t x] admits [x] unless the queue is full or closed.
    Never blocks; wakes the consumer. *)
val try_push : 'a t -> 'a -> bool

(** [pop_batch t ~max ~timeout_s] blocks until at least one item is
    queued (or [timeout_s] elapses, or the queue closes), then drains up
    to [max] items in FIFO order. [[]] means timeout or closed. *)
val pop_batch : 'a t -> max:int -> timeout_s:float -> 'a list

(** [close t] wakes blocked consumers; subsequent pushes are refused and
    pops return the remaining items, then [[]] forever. *)
val close : 'a t -> unit

val is_closed : 'a t -> bool
