module Json = Support.Json

type op =
  | Ppsp of { source : int; target : int }
  | Astar of { source : int; target : int }
  | Widest of { source : int; target : int }
  | Kcore of { vertex : int }
  | Subscribe of { interval_ms : float; updates : int }
  | Mutate of { ops : Graphs.Delta.batch }
  | Cancel of { query : int }
  | Warm_alt
  | Stats
  | Ping
  | Shutdown

type request = {
  id : int;
  op : op;
  deadline_ms : float option;
}

type status =
  | Ok
  | Partial
  | Rejected
  | Error
  | Cancelled

type meta = {
  batch_width : int;
  rounds : int;
  wall_ms : float;
  alt_assisted : bool;
  version : int option;
}

type response = {
  rid : int;
  status : status;
  result : Json.t option;
  error : string option;
  meta : meta option;
}

let status_to_string = function
  | Ok -> "ok"
  | Partial -> "partial"
  | Rejected -> "rejected"
  | Error -> "error"
  | Cancelled -> "cancelled"

let status_of_string = function
  | "ok" -> Result.Ok Ok
  | "partial" -> Result.Ok Partial
  | "rejected" -> Result.Ok Rejected
  | "error" -> Result.Ok Error
  | "cancelled" -> Result.Ok Cancelled
  | other -> Result.Error (Printf.sprintf "unknown status %S" other)

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)

let op_name = function
  | Ppsp _ -> "ppsp"
  | Astar _ -> "astar"
  | Widest _ -> "widest"
  | Kcore _ -> "kcore"
  | Subscribe _ -> "subscribe"
  | Mutate _ -> "mutate"
  | Cancel _ -> "cancel"
  | Warm_alt -> "warm_alt"
  | Stats -> "stats"
  | Ping -> "ping"
  | Shutdown -> "shutdown"

let int_member name j =
  match Json.member name j with
  | Some (Json.Int i) -> Some i
  | Some (Json.Float f) when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let num_member name j =
  match Json.member name j with
  | Some (Json.Int i) -> Some (float_of_int i)
  | Some (Json.Float f) -> Some f
  | _ -> None

let string_member name j =
  match Json.member name j with Some (Json.String s) -> Some s | _ -> None

let parse_request line =
  let fail id msg = Result.Error (id, msg) in
  match Json.of_string line with
  | Result.Error msg -> fail (-1) ("not a JSON object: " ^ msg)
  | Result.Ok json -> (
      let id = Option.value ~default:(-1) (int_member "id" json) in
      let require name k =
        match int_member name json with
        | Some v -> k v
        | None -> fail id (Printf.sprintf "missing integer field %S" name)
      in
      let finish op =
        Result.Ok { id; op; deadline_ms = num_member "deadline_ms" json }
      in
      match (json, string_member "op" json) with
      | Json.Obj _, Some op_str -> (
          if id < 0 then fail id "missing non-negative integer field \"id\""
          else
            match op_str with
            | "ppsp" ->
                require "source" (fun source ->
                    require "target" (fun target -> finish (Ppsp { source; target })))
            | "astar" ->
                require "source" (fun source ->
                    require "target" (fun target -> finish (Astar { source; target })))
            | "widest" ->
                require "source" (fun source ->
                    require "target" (fun target -> finish (Widest { source; target })))
            | "kcore" -> require "vertex" (fun vertex -> finish (Kcore { vertex }))
            | "subscribe" ->
                let interval_ms =
                  Option.value ~default:1000. (num_member "interval_ms" json)
                in
                let updates = Option.value ~default:0 (int_member "updates" json) in
                finish (Subscribe { interval_ms; updates })
            | "mutate" -> (
                match string_member "ops" json with
                | None -> fail id "missing string field \"ops\""
                | Some s -> (
                    match Graphs.Delta.of_string s with
                    | Result.Ok ops -> finish (Mutate { ops })
                    | Result.Error msg -> fail id ("bad ops: " ^ msg)))
            | "cancel" -> require "query" (fun query -> finish (Cancel { query }))
            | "warm_alt" -> finish Warm_alt
            | "stats" -> finish Stats
            | "ping" -> finish Ping
            | "shutdown" -> finish Shutdown
            | other -> fail id (Printf.sprintf "unknown op %S" other))
      | Json.Obj _, None -> fail id "missing string field \"op\""
      | _ -> fail id "not a JSON object")

let request_to_json r =
  let endpoints = function
    | Ppsp { source; target }
    | Astar { source; target }
    | Widest { source; target } ->
        [ ("source", Json.Int source); ("target", Json.Int target) ]
    | Kcore { vertex } -> [ ("vertex", Json.Int vertex) ]
    | Subscribe { interval_ms; updates } ->
        [ ("interval_ms", Json.Float interval_ms); ("updates", Json.Int updates) ]
    | Mutate { ops } -> [ ("ops", Json.String (Graphs.Delta.to_string ops)) ]
    | Cancel { query } -> [ ("query", Json.Int query) ]
    | Warm_alt | Stats | Ping | Shutdown -> []
  in
  Json.Obj
    ([ ("id", Json.Int r.id); ("op", Json.String (op_name r.op)) ]
    @ endpoints r.op
    @
    match r.deadline_ms with
    | Some ms -> [ ("deadline_ms", Json.Float ms) ]
    | None -> [])

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)

let meta_to_json m =
  Json.Obj
    ([
       ("batch_width", Json.Int m.batch_width);
       ("rounds", Json.Int m.rounds);
       ("wall_ms", Json.Float m.wall_ms);
       ("alt_assisted", Json.Bool m.alt_assisted);
     ]
    @
    match m.version with
    | Some v -> [ ("version", Json.Int v) ]
    | None -> [])

let response_to_json r =
  Json.Obj
    ([ ("id", Json.Int r.rid); ("status", Json.String (status_to_string r.status)) ]
    @ (match r.result with Some j -> [ ("result", j) ] | None -> [])
    @ (match r.error with Some e -> [ ("error", Json.String e) ] | None -> [])
    @ match r.meta with Some m -> [ ("meta", meta_to_json m) ] | None -> [])

let response_of_json json =
  match (int_member "id" json, string_member "status" json) with
  | Some rid, Some status_str -> (
      match status_of_string status_str with
      | Result.Error _ as e -> e
      | Result.Ok status ->
          let meta =
            match Json.member "meta" json with
            | Some m -> (
                match
                  ( int_member "batch_width" m,
                    int_member "rounds" m,
                    num_member "wall_ms" m,
                    Json.member "alt_assisted" m )
                with
                | Some batch_width, Some rounds, Some wall_ms, Some (Json.Bool a)
                  ->
                    (* [version] is a later addition: parse it leniently so
                       responses from pre-versioning servers still load. *)
                    Some
                      {
                        batch_width;
                        rounds;
                        wall_ms;
                        alt_assisted = a;
                        version = int_member "version" m;
                      }
                | _ -> None)
            | None -> None
          in
          Result.Ok
            {
              rid;
              status;
              result = Json.member "result" json;
              error = string_member "error" json;
              meta;
            })
  | _ -> Result.Error "response needs integer \"id\" and string \"status\""

let ok ?meta ~id result =
  { rid = id; status = Ok; result = Some result; error = None; meta }

let partial ?meta ~id result =
  { rid = id; status = Partial; result = Some result; error = None; meta }

let cancelled ?meta ~id result =
  { rid = id; status = Cancelled; result = Some result; error = None; meta }

let rejected ~id msg =
  { rid = id; status = Rejected; result = None; error = Some msg; meta = None }

let error ~id msg =
  { rid = id; status = Error; result = None; error = Some msg; meta = None }

let null_priority = Bucketing.Bucket_order.null_priority

let distance_json d =
  if d = null_priority then
    Json.Obj [ ("distance", Json.Null); ("reachable", Json.Bool false) ]
  else Json.Obj [ ("distance", Json.Int d); ("reachable", Json.Bool true) ]

let capacity_json c =
  Json.Obj [ ("capacity", Json.Int c); ("reachable", Json.Bool (c > 0)) ]

let coreness_json k = Json.Obj [ ("coreness", Json.Int k) ]
