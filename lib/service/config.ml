(* Tunables of the query service, fixed at server start. Documented with
   their wire/CLI spellings in docs/SERVICE.md §5. *)

type t = {
  queue_capacity : int;  (* admission bound of the request queue *)
  max_batch : int;  (* most queries one batcher cycle may drain *)
  default_deadline_ms : float;  (* per-query budget; 0. = no deadline *)
  landmarks : int;  (* ALT cache size; 0 disables the cache *)
  schedule : Ordered.Schedule.t;  (* engine schedule for every query run *)
  slow_query_ms : float;
      (* queries at or over this wall-clock latency emit a slow-query
         log record; 0. disables the threshold (deadline misses are
         always recorded) *)
  graph_file : string option;
      (* the path the server loaded the graph from, embedded in
         slow-query repro lines; None omits the repro field *)
  symmetric : bool;
      (* whether the load was symmetrized (`serve --symmetric`), so
         repro lines replay the same graph *)
  compact_ops : int;
      (* mutation ops between background compactions of the versioned
         graph (rebuilds every derived layout hot); 0 disables
         compaction *)
}

let default =
  {
    queue_capacity = 256;
    max_batch = 32;
    default_deadline_ms = 0.;
    landmarks = 4;
    schedule = Ordered.Schedule.default;
    slow_query_ms = 0.;
    graph_file = None;
    symmetric = false;
    compact_ops = 4096;
  }
