(* Tunables of the query service, fixed at server start. Documented with
   their wire/CLI spellings in docs/SERVICE.md §5. *)

type t = {
  queue_capacity : int;  (* admission bound of the request queue *)
  max_batch : int;  (* most queries one batcher cycle may drain *)
  default_deadline_ms : float;  (* per-query budget; 0. = no deadline *)
  landmarks : int;  (* ALT cache size; 0 disables the cache *)
  schedule : Ordered.Schedule.t;  (* engine schedule for every query run *)
}

let default =
  {
    queue_capacity = 256;
    max_batch = 32;
    default_deadline_ms = 0.;
    landmarks = 4;
    schedule = Ordered.Schedule.default;
  }
