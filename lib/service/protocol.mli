(** The query service's wire protocol: line-delimited JSON.

    One request per line in, one response per line out; responses may
    arrive in any order and are correlated by [id]. The full schema,
    with worked examples that the test suite round-trips against a live
    server, is specified in [docs/SERVICE.md] — this module is its
    executable form, built on {!Support.Json} so the server stays
    dependency-free. *)

(** A query or admin operation. Point queries name vertices of the
    loaded graph; admin operations steer the server. *)
type op =
  | Ppsp of { source : int; target : int }
      (** Point-to-point shortest path (Δ-stepping, early exit). *)
  | Astar of { source : int; target : int }
      (** PPSP accelerated by the ALT landmark cache (and coordinates
          when the server has them). *)
  | Widest of { source : int; target : int }
      (** Maximum-bottleneck capacity from [source] to [target]. *)
  | Kcore of { vertex : int }
      (** Local k-core: the coreness of [vertex] (computed on the
          symmetrized view, cached after the first run). *)
  | Subscribe of { interval_ms : float; updates : int }
      (** Live stats streaming: push a metrics/queue-depth snapshot
          every [interval_ms] (server-clamped to ≥ 10 ms), [updates]
          times — [0] streams until the server stops. Each push is an
          [ok] response with the request's [id] and a [seq] field;
          pushes interleave with other replies on the connection
          (docs/SERVICE.md §7a). Defaults when fields are omitted on
          the wire: [interval_ms = 1000.], [updates = 0]. *)
  | Mutate of { ops : Graphs.Delta.batch }
      (** Commit a batch of edge mutations ([{"op":"mutate","ops":
          "i:0-3-2,d:1-4"}] — the {!Graphs.Delta.to_string} spelling).
          Applied atomically by the batcher in queue order; the [ok]
          reply carries the new graph [version]. Queries admitted after
          the reply observe the mutated graph; queries in flight keep
          their pinned snapshot (docs/SERVICE.md §4.6). *)
  | Cancel of { query : int }
      (** Best-effort cancellation of the queued or in-flight query whose
          request [id] is [query]. Handled at admission (never queued):
          the [ok] reply confirms registration, and the target — when it
          is still unresolved — replies [cancelled] with its current
          monotone bound, at the next round boundary if its engine run
          already started. *)
  | Warm_alt  (** Warm every remaining ALT landmark, synchronously. *)
  | Stats  (** Server introspection: graph, config, cache, metrics. *)
  | Ping  (** Liveness probe. *)
  | Shutdown  (** Graceful stop: reply, drain, exit. *)

type request = {
  id : int;  (** Client-chosen correlation id, echoed verbatim. *)
  op : op;
  deadline_ms : float option;
      (** Per-query latency budget from admission; [None] uses the
          server default, [Some 0.] means "no deadline". *)
}

type status =
  | Ok  (** Exact answer. *)
  | Partial
      (** The deadline expired: the result is a monotone bound (upper
          for distances/coreness, lower for capacities), or [null] when
          nothing was learned in time. *)
  | Rejected  (** Admission control refused the request (queue full). *)
  | Error  (** Malformed request or out-of-range vertex. *)
  | Cancelled
      (** A [cancel] op resolved this query early; the result is the
          same monotone bound a deadline miss would have returned. *)

type meta = {
  batch_width : int;
      (** Queries answered by the same engine run, including this one. *)
  rounds : int;  (** Engine rounds completed when this reply resolved. *)
  wall_ms : float;  (** Admission-to-reply latency. *)
  alt_assisted : bool;
      (** True when an A* run consulted at least one warm landmark. *)
  version : int option;
      (** The graph version this query ran against (its pinned
          snapshot), or the version a [mutate] committed. [None] on
          responses from pre-versioning servers — the parser is
          lenient, so replayed docs examples without the field still
          load. *)
}

type response = {
  rid : int;  (** The request's [id]; [-1] for unparseable requests. *)
  status : status;
  result : Support.Json.t option;  (** Op-specific payload on [Ok]/[Partial]. *)
  error : string option;  (** Human-readable cause on [Rejected]/[Error]. *)
  meta : meta option;
      (** Volatile timing/batching detail — never part of the documented
          examples' equality check (docs/SERVICE.md §2.3). *)
}

val status_to_string : status -> string
val status_of_string : string -> (status, string) result

(** [op_name op] is the wire spelling of the operation ("ppsp",
    "subscribe", …) — also the [op] field of query log records. *)
val op_name : op -> string

(** [parse_request line] parses one request line. On malformed input the
    error retains the request [id] when one could be extracted, so the
    server can still address its error response. *)
val parse_request : string -> (request, int * string) result

val request_to_json : request -> Support.Json.t
val response_to_json : response -> Support.Json.t

(** [response_of_json j] parses a response (the client/test side). *)
val response_of_json : Support.Json.t -> (response, string) result

(** [ok ?meta ~id result] / [partial ?meta ~id result] /
    [rejected ~id msg] / [error ~id msg] build responses. *)
val ok : ?meta:meta -> id:int -> Support.Json.t -> response

val partial : ?meta:meta -> id:int -> Support.Json.t -> response
val cancelled : ?meta:meta -> id:int -> Support.Json.t -> response
val rejected : id:int -> string -> response
val error : id:int -> string -> response

(** [distance_json d] renders a distance result object:
    [{"distance": d, "reachable": ..}] with
    {!Bucketing.Bucket_order.null_priority} mapped to [null]/[false]. *)
val distance_json : int -> Support.Json.t

val capacity_json : int -> Support.Json.t
val coreness_json : int -> Support.Json.t
