module Pool = Parallel.Pool
module Atomic_array = Parallel.Atomic_array
module Csr = Graphs.Csr
module Handle = Graphs.Handle
module Edge_list = Graphs.Edge_list
module Bucket_order = Bucketing.Bucket_order
module Pq = Ordered.Priority_queue
module Engine = Ordered.Engine
module Deadline = Ordered.Deadline
module Schedule = Ordered.Schedule
module Json = Support.Json
module Metrics = Observe.Metrics
module Span = Observe.Span
module Tracer = Observe.Tracer

let null = Bucket_order.null_priority

type item = {
  req : Protocol.request;
  reply : Protocol.response -> unit;
  enqueued_at : float;
  deadline : Deadline.t option;
}

type t = {
  pool : Pool.t;
  handle : Handle.t;
  coords : Graphs.Coords.t option;
  config : Config.t;
  queue : item Request_queue.t;
  alt_cache : Alt.t;
  mutable coreness : int array option;
      (* Local k-core answers are lookups into one global decomposition:
         computed by the first kcore batch, cached for the graph's
         (immutable) lifetime. *)
  kcore_handle : Handle.t Lazy.t;
      (* The peel requires a symmetric graph; service graphs need not
         be. One symmetrized view, built on first kcore query. *)
  shutdown : bool Atomic.t;
  (* Flight-recorder instruments (docs/OBSERVABILITY.md §9). *)
  m_requests : Metrics.counter;
  m_rejected : Metrics.counter;
  m_batches : Metrics.counter;
  m_batched_queries : Metrics.counter;
  m_ok : Metrics.counter;
  m_partial : Metrics.counter;
  m_error : Metrics.counter;
  m_deadline_miss : Metrics.counter;
  m_alt_assisted : Metrics.counter;
  m_alt_unassisted : Metrics.counter;
  m_kcore_hits : Metrics.counter;
  m_kcore_runs : Metrics.counter;
  h_queue_wait : Metrics.histogram;
  h_batch_run : Metrics.histogram;
  h_request : Metrics.histogram;
  depth_track : Tracer.label;
}

let create ~pool ~handle ?coords ~config () =
  (match coords with
  | Some c when Graphs.Coords.num_vertices c <> Handle.num_vertices handle ->
      invalid_arg "Core.create: coordinates do not match the graph"
  | _ -> ());
  let reg = Metrics.default in
  {
    pool;
    handle;
    coords;
    config;
    queue = Request_queue.create ~capacity:config.Config.queue_capacity ();
    alt_cache =
      Alt.create ~pool ~handle ~schedule:config.Config.schedule
        ~landmarks:config.Config.landmarks ();
    coreness = None;
    kcore_handle =
      lazy
        (Handle.create
           (Csr.of_edge_list
              (Edge_list.symmetrized (Csr.to_edge_list (Handle.csr handle)))));
    shutdown = Atomic.make false;
    m_requests = Metrics.counter reg "service.requests";
    m_rejected = Metrics.counter reg "service.rejected";
    m_batches = Metrics.counter reg "service.batches";
    m_batched_queries = Metrics.counter reg "service.batched_queries";
    m_ok = Metrics.counter reg "service.replies.ok";
    m_partial = Metrics.counter reg "service.replies.partial";
    m_error = Metrics.counter reg "service.replies.error";
    m_deadline_miss = Metrics.counter reg "service.deadline_misses";
    m_alt_assisted = Metrics.counter reg "service.alt.assisted";
    m_alt_unassisted = Metrics.counter reg "service.alt.unassisted";
    m_kcore_hits = Metrics.counter reg "service.kcore.cache_hits";
    m_kcore_runs = Metrics.counter reg "service.kcore.runs";
    h_queue_wait = Metrics.histogram reg "service.queue_wait";
    h_batch_run = Metrics.histogram reg "service.batch_run";
    h_request = Metrics.histogram reg "service.request";
    depth_track = Tracer.label "service.queue_depth";
  }

let config t = t.config
let alt t = t.alt_cache
let pending t = Request_queue.length t.queue
let shutdown_requested t = Atomic.get t.shutdown

let record_depth t =
  match Tracer.current () with
  | Some tr -> Tracer.counter tr ~tid:0 t.depth_track (Request_queue.length t.queue)
  | None -> ()

(* Every reply funnels through here so the status counters and the
   end-to-end latency histogram cannot drift from what clients saw. *)
let finish t item resp =
  (match resp.Protocol.status with
  | Protocol.Ok -> Metrics.incr t.m_ok ~tid:0 ()
  | Protocol.Partial -> Metrics.incr t.m_partial ~tid:0 ()
  | Protocol.Rejected | Protocol.Error -> Metrics.incr t.m_error ~tid:0 ());
  Metrics.observe t.h_request (Unix.gettimeofday () -. item.enqueued_at);
  item.reply resp

let mk_meta ?(alt_assisted = false) ~width ~rounds item =
  {
    Protocol.batch_width = width;
    rounds;
    wall_ms = (Unix.gettimeofday () -. item.enqueued_at) *. 1000.;
    alt_assisted;
  }

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)

let deadline_of t req =
  match req.Protocol.deadline_ms with
  | Some ms when ms > 0. -> Some (Deadline.after_ms ms)
  | Some _ -> None (* explicit 0: no deadline *)
  | None ->
      if t.config.Config.default_deadline_ms > 0. then
        Some (Deadline.after_ms t.config.Config.default_deadline_ms)
      else None

let validate t (req : Protocol.request) =
  let n = Handle.num_vertices t.handle in
  let range what v =
    if v < 0 || v >= n then
      Some (Printf.sprintf "%s %d out of range [0, %d)" what v n)
    else None
  in
  let endpoints s tg =
    match range "source" s with Some e -> Some e | None -> range "target" tg
  in
  match req.Protocol.op with
  | Protocol.Ppsp { source; target }
  | Protocol.Astar { source; target }
  | Protocol.Widest { source; target } ->
      endpoints source target
  | Protocol.Kcore { vertex } -> range "vertex" vertex
  | Protocol.Warm_alt | Protocol.Stats | Protocol.Ping | Protocol.Shutdown ->
      None

let submit t req ~reply =
  Metrics.incr t.m_requests ~tid:0 ();
  match validate t req with
  | Some msg ->
      Metrics.incr t.m_error ~tid:0 ();
      reply (Protocol.error ~id:req.Protocol.id msg)
  | None ->
      let item =
        {
          req;
          reply;
          enqueued_at = Unix.gettimeofday ();
          deadline = deadline_of t req;
        }
      in
      if Request_queue.try_push t.queue item then record_depth t
      else begin
        Metrics.incr t.m_rejected ~tid:0 ();
        Metrics.incr t.m_error ~tid:0 ();
        reply
          (Protocol.rejected ~id:req.Protocol.id
             (Printf.sprintf "queue full (capacity %d)"
                (Request_queue.capacity t.queue)))
      end

(* ------------------------------------------------------------------ *)
(* Batching: group requests that can share one engine run.             *)

type group =
  | G_sssp of int * item list  (* ppsp sharing a source *)
  | G_astar of (int * int) * item list  (* identical A* queries *)
  | G_widest of int * item list  (* widest sharing a source *)
  | G_kcore of item list  (* every local k-core query *)
  | G_admin of item

type key =
  | K_sssp of int
  | K_astar of int * int
  | K_widest of int
  | K_kcore
  | K_admin of int (* unique per item: admin ops never coalesce *)

let group_items items =
  let counter = ref 0 in
  let key item =
    match item.req.Protocol.op with
    | Protocol.Ppsp { source; _ } -> K_sssp source
    | Protocol.Astar { source; target } -> K_astar (source, target)
    | Protocol.Widest { source; _ } -> K_widest source
    | Protocol.Kcore _ -> K_kcore
    | Protocol.Warm_alt | Protocol.Stats | Protocol.Ping | Protocol.Shutdown ->
        incr counter;
        K_admin !counter
  in
  (* Groups run in first-appearance order; members stay FIFO within
     their group. *)
  let members = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun item ->
      let k = key item in
      match Hashtbl.find_opt members k with
      | Some l -> Hashtbl.replace members k (item :: l)
      | None ->
          Hashtbl.add members k [ item ];
          order := k :: !order)
    items;
  List.rev_map
    (fun k ->
      let ms = List.rev (Hashtbl.find members k) in
      match (k, ms) with
      | K_sssp s, _ -> G_sssp (s, ms)
      | K_astar (s, tg), _ -> G_astar ((s, tg), ms)
      | K_widest s, _ -> G_widest (s, ms)
      | K_kcore, _ -> G_kcore ms
      | K_admin _, [ item ] -> G_admin item
      | K_admin _, _ -> assert false)
    !order

(* Batch deadline: the engine run may keep going while any member could
   still profit — members are resolved individually at round
   boundaries, so the run-level deadline only has to cover the most
   generous member. A single member without a deadline means the run
   gets none. *)
let run_deadline members =
  List.fold_left
    (fun acc m ->
      match (acc, m.deadline) with
      | None, _ | _, None -> None
      | Some a, Some b -> Some (Deadline.latest a b))
    (match members with [] -> None | m :: _ -> m.deadline)
    (match members with [] -> [] | _ :: rest -> rest)

(* ------------------------------------------------------------------ *)
(* Group runners                                                       *)

(* Shared shape of the sssp/widest group runners: one engine run from
   [source]; each member resolves at a round boundary — exact once
   [finished_vertex] holds for its target, partial the moment its own
   deadline expires. [value_of] reads the member's current answer,
   [done_ tgt] decides finalization. *)
let run_point_group t members ~pq ~dist_ready ~value_json ~edge_fn ~graph =
  let width = List.length members in
  Metrics.incr t.m_batches ~tid:0 ();
  Metrics.incr t.m_batched_queries ~tid:0 ~by:width ();
  let start = Unix.gettimeofday () in
  List.iter
    (fun m -> Metrics.observe t.h_queue_wait (start -. m.enqueued_at))
    members;
  let rounds = ref 0 in
  let target_of m =
    match m.req.Protocol.op with
    | Protocol.Ppsp { target; _ } | Protocol.Widest { target; _ } -> target
    | _ -> assert false
  in
  let pending = ref (List.map (fun m -> (m, target_of m)) members) in
  let resolve ~final =
    pending :=
      List.filter
        (fun (m, tgt) ->
          if final || dist_ready tgt then begin
            finish t m
              (Protocol.ok
                 ~meta:(mk_meta ~width ~rounds:!rounds m)
                 ~id:m.req.Protocol.id (value_json tgt));
            false
          end
          else
            match m.deadline with
            | Some dl when Deadline.expired dl ->
                Metrics.incr t.m_deadline_miss ~tid:0 ();
                finish t m
                  (Protocol.partial
                     ~meta:(mk_meta ~width ~rounds:!rounds m)
                     ~id:m.req.Protocol.id (value_json tgt));
                false
            | _ -> true)
        !pending
  in
  let stop () =
    incr rounds;
    resolve ~final:false;
    !pending = []
  in
  let run () =
    ignore
      (Engine.run ~pool:t.pool ~graph ~handle:t.handle
         ~schedule:t.config.Config.schedule ~pq ~edge_fn ~stop
         ?deadline:(run_deadline members) ())
  in
  let _, seconds = Support.Timer.time (fun () -> Span.with_ "service.batch" run) in
  Metrics.observe t.h_batch_run seconds;
  (* Queue exhausted (or run-level deadline): whatever is left is final —
     for monotone queries the vector now holds the true values, or the
     best bounds the deadline allowed. *)
  resolve ~final:true

let run_sssp_group t ~source members =
  let graph = Handle.csr t.handle in
  let n = Csr.num_vertices graph in
  let dist = Atomic_array.make n null in
  Atomic_array.set dist source 0;
  let pq =
    Pq.create ~schedule:t.config.Config.schedule
      ~num_workers:(Pool.num_workers t.pool) ~direction:Bucket_order.Lower_first
      ~allow_coarsening:true ~priorities:dist ~initial:(Pq.Start_vertex source)
      ~pool:t.pool ()
  in
  let edge_fn ctx ~src ~dst ~weight =
    let new_dist = Atomic_array.get dist src + weight in
    Pq.update_priority_min pq ctx dst new_dist
  in
  run_point_group t members ~pq ~graph ~edge_fn
    ~dist_ready:(fun tgt ->
      Atomic_array.get dist tgt <> null && Pq.finished_vertex pq tgt)
    ~value_json:(fun tgt -> Protocol.distance_json (Atomic_array.get dist tgt))

let run_widest_group t ~source members =
  let graph = Handle.csr t.handle in
  let n = Csr.num_vertices graph in
  let capacity = Atomic_array.make n 0 in
  Atomic_array.set capacity source (max 1 (Csr.max_weight graph));
  let pq =
    Pq.create ~schedule:t.config.Config.schedule
      ~num_workers:(Pool.num_workers t.pool) ~direction:Bucket_order.Higher_first
      ~allow_coarsening:true ~priorities:capacity
      ~initial:(Pq.Start_vertex source) ~pool:t.pool ()
  in
  let edge_fn ctx ~src ~dst ~weight =
    let through = min (Atomic_array.get capacity src) weight in
    Pq.update_priority_max pq ctx dst through
  in
  run_point_group t members ~pq ~graph ~edge_fn
    ~dist_ready:(fun tgt ->
      Atomic_array.get capacity tgt > 0 && Pq.finished_vertex pq tgt)
    ~value_json:(fun tgt -> Protocol.capacity_json (Atomic_array.get capacity tgt))

let run_astar_group t ~source ~target members =
  let width = List.length members in
  Metrics.incr t.m_batches ~tid:0 ();
  Metrics.incr t.m_batched_queries ~tid:0 ~by:width ();
  let start = Unix.gettimeofday () in
  List.iter
    (fun m -> Metrics.observe t.h_queue_wait (start -. m.enqueued_at))
    members;
  let heuristic = Alt.heuristic t.alt_cache ~target in
  let alt_assisted = heuristic <> None in
  Metrics.incr
    (if alt_assisted then t.m_alt_assisted else t.m_alt_unassisted)
    ~tid:0 ();
  let run () =
    Algorithms.Astar.run ~pool:t.pool ~graph:(Handle.csr t.handle)
      ?coords:t.coords ?heuristic ~handle:t.handle
      ~schedule:t.config.Config.schedule ~source ~target
      ?deadline:(run_deadline members) ()
  in
  let r, seconds = Support.Timer.time (fun () -> Span.with_ "service.batch" run) in
  Metrics.observe t.h_batch_run seconds;
  let timed_out = r.Algorithms.Astar.stats.Ordered.Stats.timed_out in
  let rounds = r.Algorithms.Astar.stats.Ordered.Stats.rounds in
  if timed_out then Metrics.incr t.m_deadline_miss ~tid:0 ~by:width ();
  List.iter
    (fun m ->
      let meta = mk_meta ~alt_assisted ~width ~rounds m in
      let payload = Protocol.distance_json r.Algorithms.Astar.distance in
      finish t m
        (if timed_out then Protocol.partial ~meta ~id:m.req.Protocol.id payload
         else Protocol.ok ~meta ~id:m.req.Protocol.id payload))
    members

let kcore_vertex m =
  match m.req.Protocol.op with
  | Protocol.Kcore { vertex } -> vertex
  | _ -> assert false

let run_kcore_group t members =
  let width = List.length members in
  let start = Unix.gettimeofday () in
  List.iter
    (fun m -> Metrics.observe t.h_queue_wait (start -. m.enqueued_at))
    members;
  match t.coreness with
  | Some core ->
      (* The decomposition is query-independent: cache hits are O(1). *)
      Metrics.incr t.m_kcore_hits ~tid:0 ~by:width ();
      List.iter
        (fun m ->
          finish t m
            (Protocol.ok
               ~meta:(mk_meta ~width ~rounds:0 m)
               ~id:m.req.Protocol.id
               (Protocol.coreness_json core.(kcore_vertex m))))
        members
  | None ->
      Metrics.incr t.m_batches ~tid:0 ();
      Metrics.incr t.m_batched_queries ~tid:0 ~by:width ();
      Metrics.incr t.m_kcore_runs ~tid:0 ();
      let handle = Lazy.force t.kcore_handle in
      let run () =
        Algorithms.Kcore.run ~pool:t.pool ~graph:(Handle.csr handle) ~handle
          ~schedule:t.config.Config.schedule ?deadline:(run_deadline members) ()
      in
      let r, seconds =
        Support.Timer.time (fun () -> Span.with_ "service.batch" run)
      in
      Metrics.observe t.h_batch_run seconds;
      let timed_out = r.Algorithms.Kcore.stats.Ordered.Stats.timed_out in
      let rounds = r.Algorithms.Kcore.stats.Ordered.Stats.rounds in
      if timed_out then Metrics.incr t.m_deadline_miss ~tid:0 ~by:width ()
      else t.coreness <- Some r.Algorithms.Kcore.coreness;
      List.iter
        (fun m ->
          let meta = mk_meta ~width ~rounds m in
          let payload =
            Protocol.coreness_json r.Algorithms.Kcore.coreness.(kcore_vertex m)
          in
          finish t m
            (if timed_out then Protocol.partial ~meta ~id:m.req.Protocol.id payload
             else Protocol.ok ~meta ~id:m.req.Protocol.id payload))
        members

(* ------------------------------------------------------------------ *)
(* Admin ops                                                           *)

let warm_alt t = Alt.warm_all t.alt_cache
let idle_warm t = Alt.warm_one t.alt_cache

let stats_json t =
  Json.Obj
    [
      ( "graph",
        Json.Obj
          [
            ("vertices", Json.Int (Handle.num_vertices t.handle));
            ("edges", Json.Int (Handle.num_edges t.handle));
            ( "layout",
              Json.String (Graphs.Layout.kind_to_string (Handle.kind t.handle))
            );
          ] );
      ( "config",
        Json.Obj
          [
            ("queue_capacity", Json.Int t.config.Config.queue_capacity);
            ("max_batch", Json.Int t.config.Config.max_batch);
            ( "default_deadline_ms",
              Json.Float t.config.Config.default_deadline_ms );
            ("landmarks", Json.Int t.config.Config.landmarks);
            ("workers", Json.Int (Pool.num_workers t.pool));
          ] );
      ("alt", Alt.to_json t.alt_cache);
      ("kcore_cached", Json.Bool (t.coreness <> None));
      ( "queue",
        Json.Obj
          [
            ("depth", Json.Int (Request_queue.length t.queue));
            ("capacity", Json.Int (Request_queue.capacity t.queue));
          ] );
      ("metrics", Metrics.to_json (Metrics.snapshot Metrics.default));
    ]

let run_admin t item =
  let reply_ok payload =
    finish t item (Protocol.ok ~id:item.req.Protocol.id payload)
  in
  match item.req.Protocol.op with
  | Protocol.Ping -> reply_ok (Json.Obj [ ("pong", Json.Bool true) ])
  | Protocol.Warm_alt ->
      let added = warm_alt t in
      reply_ok
        (Json.Obj
           [
             ("landmarks", Json.Int (Alt.total t.alt_cache));
             ("warmed", Json.Int (Alt.warmed t.alt_cache));
             ("newly_warmed", Json.Int added);
           ])
  | Protocol.Stats -> reply_ok (stats_json t)
  | Protocol.Shutdown ->
      Atomic.set t.shutdown true;
      reply_ok (Json.Obj [ ("stopping", Json.Bool true) ])
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* The batcher cycle                                                   *)

let run_group t = function
  | G_sssp (source, members) -> run_sssp_group t ~source members
  | G_astar ((source, target), members) ->
      run_astar_group t ~source ~target members
  | G_widest (source, members) -> run_widest_group t ~source members
  | G_kcore members -> run_kcore_group t members
  | G_admin item -> run_admin t item

let process_pending t ~max_wait_s =
  let items =
    Request_queue.pop_batch t.queue ~max:t.config.Config.max_batch
      ~timeout_s:max_wait_s
  in
  record_depth t;
  match items with
  | [] -> 0
  | _ ->
      List.iter (run_group t) (group_items items);
      List.length items

let drain_shutdown t =
  Request_queue.close t.queue;
  let rec drain () =
    match Request_queue.pop_batch t.queue ~max:max_int ~timeout_s:0. with
    | [] -> ()
    | items ->
        List.iter
          (fun item ->
            Metrics.incr t.m_error ~tid:0 ();
            item.reply
              (Protocol.rejected ~id:item.req.Protocol.id "server stopping"))
          items;
        drain ()
  in
  drain ()

let run_loop t ~should_stop =
  while not (should_stop () || Atomic.get t.shutdown) do
    let resolved = process_pending t ~max_wait_s:0.05 in
    (* An idle cycle is the background-warmup slot: one landmark pair
       per quiet tick until the ALT cache is fully warm. *)
    if resolved = 0 then ignore (idle_warm t)
  done
