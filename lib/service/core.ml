module Pool = Parallel.Pool
module Atomic_array = Parallel.Atomic_array
module Csr = Graphs.Csr
module Handle = Graphs.Handle
module Versioned = Graphs.Versioned
module Delta = Graphs.Delta
module Edge_list = Graphs.Edge_list
module Bucket_order = Bucketing.Bucket_order
module Pq = Ordered.Priority_queue
module Engine = Ordered.Engine
module Deadline = Ordered.Deadline
module Schedule = Ordered.Schedule
module Json = Support.Json
module Metrics = Observe.Metrics
module Span = Observe.Span
module Tracer = Observe.Tracer
module Log = Observe.Log

let null = Bucket_order.null_priority

type item = {
  req : Protocol.request;
  reply : Protocol.response -> unit;
  enqueued_at : float;
  deadline : Deadline.t option;
  trace : int;
      (* process-unique query id: the trace context of the batch run
         that answers this query, the async-slice id in the Perfetto
         export, and the [query] field of its log records *)
}

type t = {
  pool : Pool.t;
  versioned : Versioned.t;
      (* The graph behind every query: mutations commit new versions,
         query groups pin the snapshot they run against. *)
  coords : Graphs.Coords.t option;
  config : Config.t;
  queue : item Request_queue.t;
  alt_cache : Alt.t;
  mutable coreness : (int * int array) option;
      (* Local k-core answers are lookups into one global decomposition,
         keyed by the version it was computed on — a mutation commit
         retires it by key, never by an explicit invalidation call (the
         stale-cache fix). *)
  mutable kcore_handle : (int * Handle.t) option;
      (* The peel requires a symmetric graph; service graphs need not
         be. One symmetrized view per version, built on first kcore
         query after each commit. *)
  cancelled : (int, float) Hashtbl.t;
      (* request ids a [cancel] op targeted, stamped with registration
         time; consumed when the target resolves, swept when stale *)
  cancel_mutex : Mutex.t;
  mutable compactor : Thread.t option;
      (* the background compaction thread, if one was spawned; joined
         before the next spawn and at drain_shutdown *)
  shutdown : bool Atomic.t;
  trace_counter : int Atomic.t;
      (* query/batch trace ids; one sequence so a batch id never
         collides with a member id in the same export *)
  mutable subscribers : Thread.t list;
      (* live subscription pushers, joined at drain_shutdown *)
  sub_mutex : Mutex.t;
  (* Flight-recorder instruments (docs/OBSERVABILITY.md §9). *)
  m_requests : Metrics.counter;
  m_rejected : Metrics.counter;
  m_batches : Metrics.counter;
  m_batched_queries : Metrics.counter;
  m_ok : Metrics.counter;
  m_partial : Metrics.counter;
  m_error : Metrics.counter;
  m_deadline_miss : Metrics.counter;
  m_alt_assisted : Metrics.counter;
  m_alt_unassisted : Metrics.counter;
  m_kcore_hits : Metrics.counter;
  m_kcore_runs : Metrics.counter;
  m_slow : Metrics.counter;
  m_subs : Metrics.counter;
  m_sub_pushes : Metrics.counter;
  m_cancelled : Metrics.counter;
  m_cancel_requests : Metrics.counter;
  m_commits : Metrics.counter;
  m_commit_ops : Metrics.counter;
  m_compactions : Metrics.counter;
  h_queue_wait : Metrics.histogram;
  h_batch_run : Metrics.histogram;
  h_request : Metrics.histogram;
  h_commit : Metrics.histogram;
  h_compaction : Metrics.histogram;
  depth_track : Tracer.label;
  query_track : Tracer.label;
}

let create ~pool ~handle ?coords ~config () =
  (match coords with
  | Some c when Graphs.Coords.num_vertices c <> Handle.num_vertices handle ->
      invalid_arg "Core.create: coordinates do not match the graph"
  | _ -> ());
  let reg = Metrics.default in
  let versioned =
    Versioned.create ~kind:(Handle.kind handle)
      ~compact_every:
        (if config.Config.compact_ops > 0 then config.Config.compact_ops
         else max_int)
      (Handle.csr handle)
  in
  {
    pool;
    versioned;
    coords;
    config;
    queue = Request_queue.create ~capacity:config.Config.queue_capacity ();
    alt_cache =
      Alt.create ~pool ~handle:(Versioned.latest versioned)
        ~schedule:config.Config.schedule ~landmarks:config.Config.landmarks ();
    coreness = None;
    kcore_handle = None;
    cancelled = Hashtbl.create 16;
    cancel_mutex = Mutex.create ();
    compactor = None;
    shutdown = Atomic.make false;
    trace_counter = Atomic.make 1;
    subscribers = [];
    sub_mutex = Mutex.create ();
    m_requests = Metrics.counter reg "service.requests";
    m_rejected = Metrics.counter reg "service.rejected";
    m_batches = Metrics.counter reg "service.batches";
    m_batched_queries = Metrics.counter reg "service.batched_queries";
    m_ok = Metrics.counter reg "service.replies.ok";
    m_partial = Metrics.counter reg "service.replies.partial";
    m_error = Metrics.counter reg "service.replies.error";
    m_deadline_miss = Metrics.counter reg "service.deadline_misses";
    m_alt_assisted = Metrics.counter reg "service.alt.assisted";
    m_alt_unassisted = Metrics.counter reg "service.alt.unassisted";
    m_kcore_hits = Metrics.counter reg "service.kcore.cache_hits";
    m_kcore_runs = Metrics.counter reg "service.kcore.runs";
    m_slow = Metrics.counter reg "service.slow_queries";
    m_subs = Metrics.counter reg "service.subscriptions";
    m_sub_pushes = Metrics.counter reg "service.subscribe.pushes";
    m_cancelled = Metrics.counter reg "service.replies.cancelled";
    m_cancel_requests = Metrics.counter reg "service.cancel_requests";
    m_commits = Metrics.counter reg "dynamic.commits";
    m_commit_ops = Metrics.counter reg "dynamic.ops_applied";
    m_compactions = Metrics.counter reg "dynamic.compactions";
    h_queue_wait = Metrics.histogram reg "service.queue_wait";
    h_batch_run = Metrics.histogram reg "service.batch_run";
    h_request = Metrics.histogram reg "service.request";
    h_commit = Metrics.histogram reg "dynamic.commit";
    h_compaction = Metrics.histogram reg "dynamic.compaction";
    depth_track = Tracer.label "service.queue_depth";
    query_track = Tracer.label "service.query";
  }

let config t = t.config
let alt t = t.alt_cache
let versioned t = t.versioned
let version t = Versioned.version t.versioned
let pending t = Request_queue.length t.queue
let shutdown_requested t = Atomic.get t.shutdown

(* Pin the latest snapshot for the duration of one group run: commits
   and background compactions that land mid-run cannot retire (or
   half-rebuild) the graph this group reads — snapshot isolation. *)
let with_snapshot t f =
  let snapshot = Versioned.pin t.versioned in
  Fun.protect
    ~finally:(fun () -> Versioned.release t.versioned snapshot)
    (fun () -> f snapshot)

(* Consume a pending cancellation for request id [id]. One [cancel]
   resolves at most one query: the entry is removed on first match. *)
let is_cancelled t id =
  Mutex.lock t.cancel_mutex;
  let hit = Hashtbl.mem t.cancelled id in
  if hit then Hashtbl.remove t.cancelled id;
  Mutex.unlock t.cancel_mutex;
  hit

(* Cancellations whose target already resolved (or never existed) would
   otherwise pin their table entry forever; sweep the stale ones once
   the table is non-trivial. *)
let sweep_cancelled t =
  Mutex.lock t.cancel_mutex;
  if Hashtbl.length t.cancelled > 64 then begin
    let cutoff = Unix.gettimeofday () -. 60. in
    let stale =
      Hashtbl.fold
        (fun id at acc -> if at < cutoff then id :: acc else acc)
        t.cancelled []
    in
    List.iter (Hashtbl.remove t.cancelled) stale
  end;
  Mutex.unlock t.cancel_mutex

let record_depth t =
  match Tracer.current () with
  | Some tr -> Tracer.counter tr ~tid:0 t.depth_track (Request_queue.length t.queue)
  | None -> ()

(* Every reply funnels through here so the status counters and the
   end-to-end latency histogram cannot drift from what clients saw. *)
let finish t item resp =
  (match resp.Protocol.status with
  | Protocol.Ok -> Metrics.incr t.m_ok ~tid:0 ()
  | Protocol.Partial -> Metrics.incr t.m_partial ~tid:0 ()
  | Protocol.Cancelled -> Metrics.incr t.m_cancelled ~tid:0 ()
  | Protocol.Rejected | Protocol.Error -> Metrics.incr t.m_error ~tid:0 ());
  Metrics.observe t.h_request (Unix.gettimeofday () -. item.enqueued_at);
  item.reply resp

let mk_meta ?(alt_assisted = false) ?version ~width ~rounds item =
  {
    Protocol.batch_width = width;
    rounds;
    wall_ms = (Unix.gettimeofday () -. item.enqueued_at) *. 1000.;
    alt_assisted;
    version;
  }

let next_trace t = Atomic.fetch_and_add t.trace_counter 1

(* ------------------------------------------------------------------ *)
(* Per-query attribution (docs/OBSERVABILITY.md §8a)                   *)

let schedule_string t =
  Check.Sweep.schedule_to_string t.config.Config.schedule

(* The paste-able check_runner line that replays this query solo — only
   when the server knows which file it loaded the graph from. *)
let repro_of t item =
  match t.config.Config.graph_file with
  | None -> None
  | Some graph_file ->
      let mk app source target =
        Some
          (Check.Query_repro.to_line
             {
               Check.Query_repro.app;
               graph_file;
               symmetric = t.config.Config.symmetric;
               source;
               target;
               schedule = t.config.Config.schedule;
               workers = Pool.num_workers t.pool;
             })
      in
      (match item.req.Protocol.op with
      | Protocol.Ppsp { source; target } -> mk Check.Query_repro.Ppsp source target
      | Protocol.Astar { source; target } ->
          mk Check.Query_repro.Astar source target
      | Protocol.Widest { source; target } ->
          mk Check.Query_repro.Widest source target
      | Protocol.Kcore { vertex } -> mk Check.Query_repro.Kcore vertex (-1)
      | _ -> None)

(* The attribution record: built at resolve time, logged at Debug
   ([service.query.done]) for every point query and at Warn — as the
   slow-query record [service.slow_query] — when the query missed its
   deadline or beat the slow_query_ms threshold. [rounds]/[edges] are
   the engine's live totals when this member's reply resolved, which
   for a coalesced batch attributes shared work per member. *)
let log_query t item (resp : Protocol.response) ~batch_trace ~width ~rounds
    ~edges ~queue_wait_ms ~alt_assisted ~version =
  let deadline_missed = resp.Protocol.status = Protocol.Partial in
  let wall_ms = (Unix.gettimeofday () -. item.enqueued_at) *. 1000. in
  let slow_ms = t.config.Config.slow_query_ms in
  let slow = deadline_missed || (slow_ms > 0. && wall_ms >= slow_ms) in
  if slow then Metrics.incr t.m_slow ~tid:0 ();
  let level = if slow then Log.Warn else Log.Debug in
  if Log.enabled level then begin
    let endpoints =
      match item.req.Protocol.op with
      | Protocol.Ppsp { source; target }
      | Protocol.Astar { source; target }
      | Protocol.Widest { source; target } ->
          [ ("source", Json.Int source); ("target", Json.Int target) ]
      | Protocol.Kcore { vertex } -> [ ("vertex", Json.Int vertex) ]
      | _ -> []
    in
    let deadline_ms =
      match (item.req.Protocol.deadline_ms, item.deadline) with
      | Some ms, _ -> Json.Float ms
      | None, Some _ -> Json.Float t.config.Config.default_deadline_ms
      | None, None -> Json.Null
    in
    let slack_ms =
      (* Positive: the reply beat its deadline by this much. Negative:
         missed by this much (the partial-answer case). *)
      match item.deadline with
      | None -> Json.Null
      | Some d -> Json.Float (Deadline.remaining_seconds d *. 1000.)
    in
    Log.event ~tid:0 level
      (if slow then "service.slow_query" else "service.query.done")
      ([
         ("query", Json.Int item.trace);
         ("id", Json.Int item.req.Protocol.id);
         ("op", Json.String (Protocol.op_name item.req.Protocol.op));
         ("batch", Json.Int batch_trace);
         ("batch_width", Json.Int width);
       ]
      @ endpoints
      @ [
          ("status", Json.String (Protocol.status_to_string resp.Protocol.status));
          ("rounds", Json.Int rounds);
          ("edges_relaxed", Json.Int edges);
          ("wall_ms", Json.Float wall_ms);
          ("queue_wait_ms", Json.Float queue_wait_ms);
          ("deadline_ms", deadline_ms);
          ("deadline_slack_ms", slack_ms);
          ("schedule", Json.String (schedule_string t));
          ("workers", Json.Int (Pool.num_workers t.pool));
          ("alt_assisted", Json.Bool alt_assisted);
          ("version", Json.Int version);
        ]
      @
      match repro_of t item with
      | Some line -> [ ("repro", Json.String line) ]
      | None -> [])
  end

(* Reply + attribute: the funnel every point-query resolution takes.
   Closes the query's async trace slice, replies through [finish], and
   emits the attribution record. *)
let finish_query t item resp ~batch_trace ~width ~rounds ~edges ~queue_wait_ms
    ~alt_assisted ~version =
  (match Tracer.current () with
  | Some tr -> Tracer.async_end tr ~tid:0 ~id:item.trace t.query_track
  | None -> ());
  finish t item resp;
  log_query t item resp ~batch_trace ~width ~rounds ~edges ~queue_wait_ms
    ~alt_assisted ~version

(* Open one async slice per member and scope the tracer's ambient query
   context to the batch for the duration of [f]: every engine/traverse/
   pool slice recorded inside carries [args:{"query": batch_trace}]. *)
let with_batch_context t ~batch_trace members f =
  (match Tracer.current () with
  | Some tr ->
      List.iter
        (fun m -> Tracer.async_begin tr ~tid:0 ~id:m.trace t.query_track)
        members
  | None -> ());
  Tracer.set_context (Some batch_trace);
  Fun.protect ~finally:(fun () -> Tracer.set_context None) f

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)

let deadline_of t req =
  match req.Protocol.deadline_ms with
  | Some ms when ms > 0. -> Some (Deadline.after_ms ms)
  | Some _ -> None (* explicit 0: no deadline *)
  | None ->
      if t.config.Config.default_deadline_ms > 0. then
        Some (Deadline.after_ms t.config.Config.default_deadline_ms)
      else None

let validate t (req : Protocol.request) =
  let n = Versioned.num_vertices t.versioned in
  let range what v =
    if v < 0 || v >= n then
      Some (Printf.sprintf "%s %d out of range [0, %d)" what v n)
    else None
  in
  let endpoints s tg =
    match range "source" s with Some e -> Some e | None -> range "target" tg
  in
  match req.Protocol.op with
  | Protocol.Ppsp { source; target }
  | Protocol.Astar { source; target }
  | Protocol.Widest { source; target } ->
      endpoints source target
  | Protocol.Kcore { vertex } -> range "vertex" vertex
  | Protocol.Subscribe { interval_ms; updates } ->
      if interval_ms < 0. || Float.is_nan interval_ms then
        Some "interval_ms must be non-negative"
      else if updates < 0 || updates > 100_000 then
        Some "updates out of range [0, 100000]"
      else None
  | Protocol.Mutate { ops } -> (
      match Delta.validate ~num_vertices:n ops with
      | Result.Ok () -> None
      | Result.Error msg -> Some msg)
  | Protocol.Cancel { query } ->
      if query < 0 then Some "query must be a non-negative request id"
      else None
  | Protocol.Warm_alt | Protocol.Stats | Protocol.Ping | Protocol.Shutdown ->
      None

let enqueue t req ~reply =
  let item =
    {
      req;
      reply;
      enqueued_at = Unix.gettimeofday ();
      deadline = deadline_of t req;
      trace = next_trace t;
    }
  in
  if Request_queue.try_push t.queue item then record_depth t
  else begin
    Metrics.incr t.m_rejected ~tid:0 ();
    Metrics.incr t.m_error ~tid:0 ();
    reply
      (Protocol.rejected ~id:req.Protocol.id
         (Printf.sprintf "queue full (capacity %d)"
            (Request_queue.capacity t.queue)))
  end

let submit t req ~reply =
  Metrics.incr t.m_requests ~tid:0 ();
  match validate t req with
  | Some msg ->
      Metrics.incr t.m_error ~tid:0 ();
      reply (Protocol.error ~id:req.Protocol.id msg)
  | None -> (
      match req.Protocol.op with
      | Protocol.Cancel { query } ->
          (* Never queued: a cancellation racing the batcher must be
             visible while its target runs, not after. Registered here on
             the submitting thread; the batcher consumes it at the next
             round boundary (in-flight) or when it reaches the queued
             target. *)
          Mutex.lock t.cancel_mutex;
          Hashtbl.replace t.cancelled query (Unix.gettimeofday ());
          Mutex.unlock t.cancel_mutex;
          Metrics.incr t.m_cancel_requests ~tid:0 ();
          Metrics.incr t.m_ok ~tid:0 ();
          reply
            (Protocol.ok ~id:req.Protocol.id
               (Json.Obj
                  [
                    ("cancelling", Json.Int query);
                    ("registered", Json.Bool true);
                  ]))
      | _ -> enqueue t req ~reply)

(* ------------------------------------------------------------------ *)
(* Batching: group requests that can share one engine run.             *)

type group =
  | G_sssp of int * item list  (* ppsp sharing a source *)
  | G_astar of (int * int) * item list  (* identical A* queries *)
  | G_widest of int * item list  (* widest sharing a source *)
  | G_kcore of item list  (* every local k-core query *)
  | G_admin of item

type key =
  | K_sssp of int
  | K_astar of int * int
  | K_widest of int
  | K_kcore
  | K_admin of int (* unique per item: admin ops never coalesce *)

let group_items items =
  let counter = ref 0 in
  let key item =
    match item.req.Protocol.op with
    | Protocol.Ppsp { source; _ } -> K_sssp source
    | Protocol.Astar { source; target } -> K_astar (source, target)
    | Protocol.Widest { source; _ } -> K_widest source
    | Protocol.Kcore _ -> K_kcore
    | Protocol.Mutate _ | Protocol.Cancel _ | Protocol.Subscribe _
    | Protocol.Warm_alt | Protocol.Stats | Protocol.Ping | Protocol.Shutdown
      ->
        (* Mutations never coalesce and keep their first-appearance
           position among the cycle's groups; a query coalesced into an
           earlier group may run before a mutate that preceded it on the
           wire — its meta [version] names the snapshot it actually
           read. *)
        incr counter;
        K_admin !counter
  in
  (* Groups run in first-appearance order; members stay FIFO within
     their group. *)
  let members = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun item ->
      let k = key item in
      match Hashtbl.find_opt members k with
      | Some l -> Hashtbl.replace members k (item :: l)
      | None ->
          Hashtbl.add members k [ item ];
          order := k :: !order)
    items;
  List.rev_map
    (fun k ->
      let ms = List.rev (Hashtbl.find members k) in
      match (k, ms) with
      | K_sssp s, _ -> G_sssp (s, ms)
      | K_astar (s, tg), _ -> G_astar ((s, tg), ms)
      | K_widest s, _ -> G_widest (s, ms)
      | K_kcore, _ -> G_kcore ms
      | K_admin _, [ item ] -> G_admin item
      | K_admin _, _ -> assert false)
    !order

(* Batch deadline: the engine run may keep going while any member could
   still profit — members are resolved individually at round
   boundaries, so the run-level deadline only has to cover the most
   generous member. A single member without a deadline means the run
   gets none. *)
let run_deadline members =
  List.fold_left
    (fun acc m ->
      match (acc, m.deadline) with
      | None, _ | _, None -> None
      | Some a, Some b -> Some (Deadline.latest a b))
    (match members with [] -> None | m :: _ -> m.deadline)
    (match members with [] -> [] | _ :: rest -> rest)

(* ------------------------------------------------------------------ *)
(* Group runners                                                       *)

(* Shared shape of the sssp/widest group runners: one engine run from
   [source]; each member resolves at a round boundary — exact once
   [finished_vertex] holds for its target, partial the moment its own
   deadline expires. [value_of] reads the member's current answer,
   [done_ tgt] decides finalization. *)
let run_point_group t members ~snapshot ~pq ~dist_ready ~value_json ~edge_fn
    ~graph =
  let width = List.length members in
  let version = Handle.version snapshot in
  let batch_trace = next_trace t in
  Metrics.incr t.m_batches ~tid:0 ();
  Metrics.incr t.m_batched_queries ~tid:0 ~by:width ();
  let start = Unix.gettimeofday () in
  List.iter
    (fun m -> Metrics.observe t.h_queue_wait (start -. m.enqueued_at))
    members;
  let rounds = ref 0 in
  (* Live engine totals, refreshed by the on_round hook after every
     global round. [stop] runs before the next round, so a member
     resolved there is attributed exactly the rounds and relaxations the
     engine had completed when its reply left. *)
  let live_rounds = ref 0 and live_edges = ref 0 in
  let on_round (s : Ordered.Stats.t) =
    live_rounds := s.Ordered.Stats.rounds;
    live_edges := s.Ordered.Stats.edges_relaxed
  in
  let target_of m =
    match m.req.Protocol.op with
    | Protocol.Ppsp { target; _ } | Protocol.Widest { target; _ } -> target
    | _ -> assert false
  in
  let pending = ref (List.map (fun m -> (m, target_of m)) members) in
  let answer m resp =
    finish_query t m resp ~batch_trace ~width ~rounds:!live_rounds
      ~edges:!live_edges
      ~queue_wait_ms:((start -. m.enqueued_at) *. 1000.)
      ~alt_assisted:false ~version
  in
  let resolve ~final =
    pending :=
      List.filter
        (fun (m, tgt) ->
          if is_cancelled t m.req.Protocol.id then begin
            (* A cancel raced in: the reply carries whatever monotone
               bound the run has reached, exactly like a deadline miss
               but with its own status. *)
            answer m
              (Protocol.cancelled
                 ~meta:(mk_meta ~version ~width ~rounds:!rounds m)
                 ~id:m.req.Protocol.id (value_json tgt));
            false
          end
          else if final || dist_ready tgt then begin
            answer m
              (Protocol.ok
                 ~meta:(mk_meta ~version ~width ~rounds:!rounds m)
                 ~id:m.req.Protocol.id (value_json tgt));
            false
          end
          else
            match m.deadline with
            | Some dl when Deadline.expired dl ->
                Metrics.incr t.m_deadline_miss ~tid:0 ();
                answer m
                  (Protocol.partial
                     ~meta:(mk_meta ~version ~width ~rounds:!rounds m)
                     ~id:m.req.Protocol.id (value_json tgt));
                false
            | _ -> true)
        !pending
  in
  let stop () =
    incr rounds;
    resolve ~final:false;
    !pending = []
  in
  let run () =
    ignore
      (Engine.run ~pool:t.pool ~graph ~handle:snapshot
         ~schedule:t.config.Config.schedule ~pq ~edge_fn ~stop ~on_round
         ?deadline:(run_deadline members) ())
  in
  let _, seconds =
    Support.Timer.time (fun () ->
        Span.with_ "service.batch" (fun () ->
            with_batch_context t ~batch_trace members run))
  in
  Metrics.observe t.h_batch_run seconds;
  (* Queue exhausted (or run-level deadline): whatever is left is final —
     for monotone queries the vector now holds the true values, or the
     best bounds the deadline allowed. *)
  resolve ~final:true

let run_sssp_group t ~source members =
  with_snapshot t (fun snapshot ->
      let graph = Handle.csr snapshot in
      let n = Csr.num_vertices graph in
      let dist = Atomic_array.make n null in
      Atomic_array.set dist source 0;
      let pq =
        Pq.create ~schedule:t.config.Config.schedule
          ~num_workers:(Pool.num_workers t.pool)
          ~direction:Bucket_order.Lower_first ~allow_coarsening:true
          ~priorities:dist ~initial:(Pq.Start_vertex source) ~pool:t.pool ()
      in
      let edge_fn ctx ~src ~dst ~weight =
        let new_dist = Atomic_array.get dist src + weight in
        Pq.update_priority_min pq ctx dst new_dist
      in
      run_point_group t members ~snapshot ~pq ~graph ~edge_fn
        ~dist_ready:(fun tgt ->
          Atomic_array.get dist tgt <> null && Pq.finished_vertex pq tgt)
        ~value_json:(fun tgt ->
          Protocol.distance_json (Atomic_array.get dist tgt)))

let run_widest_group t ~source members =
  with_snapshot t (fun snapshot ->
      let graph = Handle.csr snapshot in
      let n = Csr.num_vertices graph in
      let capacity = Atomic_array.make n 0 in
      Atomic_array.set capacity source (max 1 (Csr.max_weight graph));
      let pq =
        Pq.create ~schedule:t.config.Config.schedule
          ~num_workers:(Pool.num_workers t.pool)
          ~direction:Bucket_order.Higher_first ~allow_coarsening:true
          ~priorities:capacity ~initial:(Pq.Start_vertex source) ~pool:t.pool ()
      in
      let edge_fn ctx ~src ~dst ~weight =
        let through = min (Atomic_array.get capacity src) weight in
        Pq.update_priority_max pq ctx dst through
      in
      run_point_group t members ~snapshot ~pq ~graph ~edge_fn
        ~dist_ready:(fun tgt ->
          Atomic_array.get capacity tgt > 0 && Pq.finished_vertex pq tgt)
        ~value_json:(fun tgt ->
          Protocol.capacity_json (Atomic_array.get capacity tgt)))

let run_astar_group t ~source ~target members =
  with_snapshot t (fun snapshot ->
  let version = Handle.version snapshot in
  let width = List.length members in
  let batch_trace = next_trace t in
  Metrics.incr t.m_batches ~tid:0 ();
  Metrics.incr t.m_batched_queries ~tid:0 ~by:width ();
  let start = Unix.gettimeofday () in
  List.iter
    (fun m -> Metrics.observe t.h_queue_wait (start -. m.enqueued_at))
    members;
  (* A cancel that lands while these members are still queued resolves
     here, before the run; mid-run cancellation is the point groups'
     round-boundary seam. *)
  let cancelled_ms, members =
    List.partition (fun m -> is_cancelled t m.req.Protocol.id) members
  in
  List.iter
    (fun m ->
      finish_query t m
        (Protocol.cancelled
           ~meta:(mk_meta ~version ~width ~rounds:0 m)
           ~id:m.req.Protocol.id Json.Null)
        ~batch_trace ~width ~rounds:0 ~edges:0
        ~queue_wait_ms:((start -. m.enqueued_at) *. 1000.)
        ~alt_assisted:false ~version)
    cancelled_ms;
  if members = [] then ()
  else begin
  let heuristic = Alt.heuristic t.alt_cache ~target in
  let alt_assisted = heuristic <> None in
  Metrics.incr
    (if alt_assisted then t.m_alt_assisted else t.m_alt_unassisted)
    ~tid:0 ();
  let run () =
    Algorithms.Astar.run ~pool:t.pool ~graph:(Handle.csr snapshot)
      ?coords:t.coords ?heuristic ~handle:snapshot
      ~schedule:t.config.Config.schedule ~source ~target
      ?deadline:(run_deadline members) ()
  in
  let r, seconds =
    Support.Timer.time (fun () ->
        Span.with_ "service.batch" (fun () ->
            with_batch_context t ~batch_trace members run))
  in
  Metrics.observe t.h_batch_run seconds;
  let timed_out = r.Algorithms.Astar.stats.Ordered.Stats.timed_out in
  let rounds = r.Algorithms.Astar.stats.Ordered.Stats.rounds in
  let edges = r.Algorithms.Astar.stats.Ordered.Stats.edges_relaxed in
  if timed_out then Metrics.incr t.m_deadline_miss ~tid:0 ~by:width ();
  List.iter
    (fun m ->
      let meta = mk_meta ~alt_assisted ~version ~width ~rounds m in
      let payload = Protocol.distance_json r.Algorithms.Astar.distance in
      finish_query t m
        (if timed_out then Protocol.partial ~meta ~id:m.req.Protocol.id payload
         else Protocol.ok ~meta ~id:m.req.Protocol.id payload)
        ~batch_trace ~width ~rounds ~edges
        ~queue_wait_ms:((start -. m.enqueued_at) *. 1000.)
        ~alt_assisted ~version)
    members
  end)

let kcore_vertex m =
  match m.req.Protocol.op with
  | Protocol.Kcore { vertex } -> vertex
  | _ -> assert false

let run_kcore_group t members =
  with_snapshot t (fun snapshot ->
  let version = Handle.version snapshot in
  let width = List.length members in
  let start = Unix.gettimeofday () in
  List.iter
    (fun m -> Metrics.observe t.h_queue_wait (start -. m.enqueued_at))
    members;
  let batch_trace = next_trace t in
  let cancelled_ms, members =
    List.partition (fun m -> is_cancelled t m.req.Protocol.id) members
  in
  List.iter
    (fun m ->
      finish_query t m
        (Protocol.cancelled
           ~meta:(mk_meta ~version ~width ~rounds:0 m)
           ~id:m.req.Protocol.id Json.Null)
        ~batch_trace ~width ~rounds:0 ~edges:0
        ~queue_wait_ms:((start -. m.enqueued_at) *. 1000.)
        ~alt_assisted:false ~version)
    cancelled_ms;
  if members = [] then ()
  else
  match t.coreness with
  | Some (v, core) when v = version ->
      (* The decomposition is query-independent: cache hits are O(1).
         The version key retires it on mutation — a post-commit query
         can never read the old graph's coreness. *)
      Metrics.incr t.m_kcore_hits ~tid:0 ~by:width ();
      with_batch_context t ~batch_trace members (fun () ->
          List.iter
            (fun m ->
              finish_query t m
                (Protocol.ok
                   ~meta:(mk_meta ~version ~width ~rounds:0 m)
                   ~id:m.req.Protocol.id
                   (Protocol.coreness_json core.(kcore_vertex m)))
                ~batch_trace ~width ~rounds:0 ~edges:0
                ~queue_wait_ms:((start -. m.enqueued_at) *. 1000.)
                ~alt_assisted:false ~version)
            members)
  | _ ->
      Metrics.incr t.m_batches ~tid:0 ();
      Metrics.incr t.m_batched_queries ~tid:0 ~by:width ();
      Metrics.incr t.m_kcore_runs ~tid:0 ();
      let handle =
        match t.kcore_handle with
        | Some (v, h) when v = version -> h
        | _ ->
            let h =
              Handle.create ~version
                (Csr.of_edge_list
                   (Edge_list.symmetrized
                      (Csr.to_edge_list (Handle.csr snapshot))))
            in
            t.kcore_handle <- Some (version, h);
            h
      in
      let run () =
        Algorithms.Kcore.run ~pool:t.pool ~graph:(Handle.csr handle) ~handle
          ~schedule:t.config.Config.schedule ?deadline:(run_deadline members) ()
      in
      let r, seconds =
        Support.Timer.time (fun () ->
            Span.with_ "service.batch" (fun () ->
                with_batch_context t ~batch_trace members run))
      in
      Metrics.observe t.h_batch_run seconds;
      let timed_out = r.Algorithms.Kcore.stats.Ordered.Stats.timed_out in
      let rounds = r.Algorithms.Kcore.stats.Ordered.Stats.rounds in
      let edges = r.Algorithms.Kcore.stats.Ordered.Stats.edges_relaxed in
      if timed_out then Metrics.incr t.m_deadline_miss ~tid:0 ~by:width ()
      else t.coreness <- Some (version, r.Algorithms.Kcore.coreness);
      List.iter
        (fun m ->
          let meta = mk_meta ~version ~width ~rounds m in
          let payload =
            Protocol.coreness_json r.Algorithms.Kcore.coreness.(kcore_vertex m)
          in
          finish_query t m
            (if timed_out then Protocol.partial ~meta ~id:m.req.Protocol.id payload
             else Protocol.ok ~meta ~id:m.req.Protocol.id payload)
            ~batch_trace ~width ~rounds ~edges
            ~queue_wait_ms:((start -. m.enqueued_at) *. 1000.)
            ~alt_assisted:false ~version)
        members)

(* ------------------------------------------------------------------ *)
(* Admin ops                                                           *)

let warm_alt t = Alt.warm_all t.alt_cache
let idle_warm t = Alt.warm_one t.alt_cache

(* p50/p95/p99 of the service latency histograms, derived from their
   log2-ns buckets (within one bucket of exact — see
   Metrics.percentile_ns). Milliseconds on the wire, like wall_ms. *)
let percentiles_json (snap : Metrics.snapshot) =
  let of_hist name =
    match List.assoc_opt name snap.Metrics.histograms with
    | None -> Json.Obj [ ("count", Json.Int 0) ]
    | Some h ->
        let p q = Json.Float (Metrics.percentile_ns h q /. 1e6) in
        Json.Obj
          [
            ("count", Json.Int h.Metrics.count);
            ("p50_ms", p 0.5);
            ("p95_ms", p 0.95);
            ("p99_ms", p 0.99);
          ]
  in
  Json.Obj
    [
      ("request", of_hist "service.request");
      ("batch_run", of_hist "service.batch_run");
      ("queue_wait", of_hist "service.queue_wait");
    ]

(* One streamed stats push: a compact subset of [stats_json] (queue
   depth, reply counters, latency percentiles) cheap enough to emit
   every interval without touching the graph. *)
let snapshot_json t ~seq ~updates =
  let snap = Metrics.snapshot Metrics.default in
  let c name =
    Json.Int (Option.value ~default:0 (List.assoc_opt name snap.Metrics.counters))
  in
  Json.Obj
    [
      ("seq", Json.Int seq);
      ("updates", Json.Int updates);
      ("ts_ms", Json.Float (Unix.gettimeofday () *. 1000.));
      ("version", Json.Int (Versioned.version t.versioned));
      ( "queue",
        Json.Obj
          [
            ("depth", Json.Int (Request_queue.length t.queue));
            ("capacity", Json.Int (Request_queue.capacity t.queue));
          ] );
      ("kcore_cached", Json.Bool (Option.is_some t.coreness));
      ("alt_warmed", Json.Int (Alt.warmed t.alt_cache));
      ( "counters",
        Json.Obj
          [
            ("requests", c "service.requests");
            ("ok", c "service.replies.ok");
            ("partial", c "service.replies.partial");
            ("error", c "service.replies.error");
            ("deadline_misses", c "service.deadline_misses");
            ("slow_queries", c "service.slow_queries");
            ("batches", c "service.batches");
          ] );
      ("latency", percentiles_json snap);
    ]

let stats_json t =
  let snap = Metrics.snapshot Metrics.default in
  Json.Obj
    [
      ( "graph",
        Json.Obj
          [
            ("vertices", Json.Int (Versioned.num_vertices t.versioned));
            ( "edges",
              Json.Int (Handle.num_edges (Versioned.latest t.versioned)) );
            ( "layout",
              Json.String
                (Graphs.Layout.kind_to_string (Versioned.kind t.versioned)) );
            ("version", Json.Int (Versioned.version t.versioned));
          ] );
      ( "config",
        Json.Obj
          [
            ("queue_capacity", Json.Int t.config.Config.queue_capacity);
            ("max_batch", Json.Int t.config.Config.max_batch);
            ( "default_deadline_ms",
              Json.Float t.config.Config.default_deadline_ms );
            ("landmarks", Json.Int t.config.Config.landmarks);
            ("compact_ops", Json.Int t.config.Config.compact_ops);
            ("workers", Json.Int (Pool.num_workers t.pool));
          ] );
      ( "dynamic",
        Json.Obj
          [
            ("version", Json.Int (Versioned.version t.versioned));
            ("ops_pending", Json.Int (Versioned.ops_pending t.versioned));
            ("compactions", Json.Int (Versioned.compactions t.versioned));
            ( "pinned",
              Json.List
                (List.map
                   (fun v -> Json.Int v)
                   (Versioned.pinned_versions t.versioned)) );
          ] );
      ("alt", Alt.to_json t.alt_cache);
      ("kcore_cached", Json.Bool (Option.is_some t.coreness));
      ( "queue",
        Json.Obj
          [
            ("depth", Json.Int (Request_queue.length t.queue));
            ("capacity", Json.Int (Request_queue.capacity t.queue));
          ] );
      ("metrics", Metrics.to_json snap);
      ("latency", percentiles_json snap);
    ]

(* A subscription: the first snapshot is pushed synchronously through
   [finish] (it doubles as the op's ok reply and lands in the status
   counters once); the rest stream from a dedicated pusher thread
   straight through [item.reply] — the server's per-connection write
   lock makes that safe, and bypassing [finish] keeps the reply
   counters from counting one request many times. Pushers sleep in
   short slices so shutdown never waits a full interval, and are
   joined by [drain_shutdown]. *)
let run_subscribe t item ~interval_ms ~updates =
  Metrics.incr t.m_subs ~tid:0 ();
  let interval_s = Float.max 0.01 (interval_ms /. 1000.) in
  let push_via send seq =
    Metrics.incr t.m_sub_pushes ~tid:0 ();
    send
      (Protocol.ok ~id:item.req.Protocol.id (snapshot_json t ~seq ~updates))
  in
  push_via (finish t item) 1;
  if updates <> 1 then begin
    let pusher () =
      let seq = ref 2 in
      let continue () =
        (not (Atomic.get t.shutdown)) && (updates = 0 || !seq <= updates)
      in
      while continue () do
        let slept = ref 0. in
        while continue () && !slept < interval_s do
          let slice = Float.min 0.05 (interval_s -. !slept) in
          Thread.delay slice;
          slept := !slept +. slice
        done;
        if continue () then begin
          push_via item.reply !seq;
          incr seq
        end
      done
    in
    Mutex.lock t.sub_mutex;
    t.subscribers <- Thread.create pusher () :: t.subscribers;
    Mutex.unlock t.sub_mutex
  end

(* Background compaction: rebuild every derived layout of the latest
   version hot on a helper thread, then swap — queries keep reading
   their pinned snapshots throughout, and the next pin finds all caches
   warm. One compactor at a time; a still-running one is joined first
   (it is normally long done by the next trigger). *)
let maybe_compact t =
  if t.config.Config.compact_ops > 0 && Versioned.should_compact t.versioned
  then begin
    (match t.compactor with
    | Some th ->
        Thread.join th;
        t.compactor <- None
    | None -> ());
    t.compactor <-
      Some
        (Thread.create
           (fun () ->
             let swapped, seconds =
               Support.Timer.time (fun () -> Versioned.compact t.versioned)
             in
             if swapped then begin
               Metrics.incr t.m_compactions ~tid:0 ();
               Metrics.observe t.h_compaction seconds
             end)
           ());
    true
  end
  else false

(* One mutation commit: apply the batch (a fresh version), retire the
   version-keyed caches, repair the ALT vectors incrementally, and kick
   compaction when the op budget is reached. Runs on the batcher thread,
   so every query is strictly before or after the commit. *)
let run_mutate t item ~ops =
  let start = Unix.gettimeofday () in
  Metrics.observe t.h_queue_wait (start -. item.enqueued_at);
  let old_handle = Versioned.latest t.versioned in
  let version =
    Span.with_ "service.mutate" (fun () -> Versioned.commit t.versioned ops)
  in
  let handle = Versioned.latest t.versioned in
  Metrics.incr t.m_commits ~tid:0 ();
  Metrics.incr t.m_commit_ops ~tid:0 ~by:(Delta.size ops) ();
  let refreshed, kept = Alt.refresh t.alt_cache ~old_handle ~handle ~batch:ops in
  let compacting = maybe_compact t in
  Metrics.observe t.h_commit (Unix.gettimeofday () -. start);
  finish t item
    (Protocol.ok
       ~meta:(mk_meta ~version ~width:1 ~rounds:0 item)
       ~id:item.req.Protocol.id
       (Json.Obj
          [
            ("version", Json.Int version);
            ("applied", Json.Int (Delta.size ops));
            ("alt_refreshed", Json.Int refreshed);
            ("alt_kept", Json.Int kept);
            ("compacting", Json.Bool compacting);
          ]))

let run_admin t item =
  let reply_ok payload =
    finish t item (Protocol.ok ~id:item.req.Protocol.id payload)
  in
  match item.req.Protocol.op with
  | Protocol.Ping -> reply_ok (Json.Obj [ ("pong", Json.Bool true) ])
  | Protocol.Mutate { ops } -> run_mutate t item ~ops
  | Protocol.Subscribe { interval_ms; updates } ->
      run_subscribe t item ~interval_ms ~updates
  | Protocol.Warm_alt ->
      let added = warm_alt t in
      reply_ok
        (Json.Obj
           [
             ("landmarks", Json.Int (Alt.total t.alt_cache));
             ("warmed", Json.Int (Alt.warmed t.alt_cache));
             ("newly_warmed", Json.Int added);
           ])
  | Protocol.Stats -> reply_ok (stats_json t)
  | Protocol.Shutdown ->
      Atomic.set t.shutdown true;
      reply_ok (Json.Obj [ ("stopping", Json.Bool true) ])
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* The batcher cycle                                                   *)

let run_group t = function
  | G_sssp (source, members) -> run_sssp_group t ~source members
  | G_astar ((source, target), members) ->
      run_astar_group t ~source ~target members
  | G_widest (source, members) -> run_widest_group t ~source members
  | G_kcore members -> run_kcore_group t members
  | G_admin item -> run_admin t item

let process_pending t ~max_wait_s =
  let items =
    Request_queue.pop_batch t.queue ~max:t.config.Config.max_batch
      ~timeout_s:max_wait_s
  in
  record_depth t;
  sweep_cancelled t;
  match items with
  | [] -> 0
  | _ ->
      List.iter (run_group t) (group_items items);
      List.length items

let drain_shutdown t =
  (* Stop the subscription pushers first: they write to connections the
     server only closes after this returns, so every stream gets to
     finish its in-flight push. *)
  Atomic.set t.shutdown true;
  let pushers =
    Mutex.lock t.sub_mutex;
    let l = t.subscribers in
    t.subscribers <- [];
    Mutex.unlock t.sub_mutex;
    l
  in
  List.iter Thread.join pushers;
  (match t.compactor with
  | Some th ->
      Thread.join th;
      t.compactor <- None
  | None -> ());
  Request_queue.close t.queue;
  let rec drain () =
    match Request_queue.pop_batch t.queue ~max:max_int ~timeout_s:0. with
    | [] -> ()
    | items ->
        List.iter
          (fun item ->
            Metrics.incr t.m_error ~tid:0 ();
            item.reply
              (Protocol.rejected ~id:item.req.Protocol.id "server stopping"))
          items;
        drain ()
  in
  drain ()

let run_loop t ~should_stop =
  while not (should_stop () || Atomic.get t.shutdown) do
    let resolved = process_pending t ~max_wait_s:0.05 in
    (* An idle cycle is the background-warmup slot: one landmark pair
       per quiet tick until the ALT cache is fully warm. *)
    if resolved = 0 then ignore (idle_warm t)
  done
