(** The query service core: admission, batching, demultiplexing,
    deadlines, and the result caches — everything the server does that
    is not socket I/O, so tests and the benchmark drive it in-process.

    Life of a request (docs/SERVICE.md §3): {!submit} validates and
    admits it into the bounded {!Request_queue} (full queue ⇒ immediate
    [rejected] reply, never blocking the caller); the batcher cycle
    ({!process_pending}, looped by {!run_loop} on the server's runner
    thread) drains up to [max_batch] requests, groups the ones that can
    share an engine run — PPSP queries with a common source, widest-path
    queries with a common source, identical A* queries, every local
    k-core query — and runs one engine execution per group, resolving
    each member at round boundaries through the engine's [stop] seam:
    exact answers as their targets finalize, partial answers the moment
    their deadlines expire. Replies are pushed through each request's
    callback as they resolve, so a batch-mate with a tight deadline is
    answered mid-run, not at batch completion.

    Dynamic graphs (docs/SERVICE.md §4.6): [mutate] ops commit
    {!Graphs.Delta} batches on the batcher thread, minting a new graph
    version. Every query group pins the latest snapshot for its run —
    commits and background compactions never disturb an in-flight query
    — and stamps the pinned version into its replies' [meta.version] and
    attribution records. The ALT landmark cache is repaired
    incrementally after each commit ({!Alt.refresh}); the k-core
    decomposition cache is keyed by version so it retires itself.
    [cancel] ops are handled at admission (any thread) and consumed by
    the batcher at round boundaries, resolving their target with status
    [cancelled] and its current monotone bound.

    Thread model: {!submit} may be called from any thread;
    {!process_pending}/{!run_loop}/{!warm_alt} must stay on one consumer
    thread (they mutate the ALT and k-core caches and run the pool).
    Reply callbacks run on the consumer thread except for
    admission-time rejections and validation errors, which run on the
    submitting thread.

    Every stage emits [service.*] metrics and spans — the full inventory
    is documented in docs/OBSERVABILITY.md §8. *)

type t

(** [create ~pool ~handle ?coords ~config ()] loads nothing: the graph
    is already behind [handle] (millisecond startup via GRAPHBIN —
    docs/SERVICE.md §5). [handle] becomes version 0 of the service's
    {!Graphs.Versioned} graph; [mutate] ops commit later versions.
    [coords], when given, join the ALT cache as an extra A* heuristic. *)
val create :
  pool:Parallel.Pool.t ->
  handle:Graphs.Handle.t ->
  ?coords:Graphs.Coords.t ->
  config:Config.t ->
  unit ->
  t

val config : t -> Config.t
val alt : t -> Alt.t

(** The service's versioned graph. Exposed for tests and the benchmark
    (e.g. committing from another thread to exercise snapshot
    isolation); the service itself commits only on the batcher thread. *)
val versioned : t -> Graphs.Versioned.t

(** The latest committed graph version. *)
val version : t -> int

(** [submit t req ~reply] validates, stamps the deadline, and admits
    [req]. Invalid requests and admission rejections invoke [reply]
    immediately (statuses [error] / [rejected]); admitted requests hold
    their [reply] until the batcher resolves them. Never blocks. *)
val submit : t -> Protocol.request -> reply:(Protocol.response -> unit) -> unit

(** [process_pending t ~max_wait_s] runs one batcher cycle: waits up to
    [max_wait_s] for a non-empty queue, then drains ≤ [max_batch]
    requests, groups, runs, replies. Returns the number of requests
    resolved ([0] on timeout). Consumer thread only. *)
val process_pending : t -> max_wait_s:float -> int

(** [idle_warm t] warms one cold ALT landmark (the background warmup
    step {!run_loop} takes when the queue is idle); [false] when the
    cache is already warm. *)
val idle_warm : t -> bool

(** [warm_alt t] warms the whole cache now; returns newly warmed
    landmarks. *)
val warm_alt : t -> int

(** [run_loop t ~should_stop] is the runner-thread body: batcher cycles
    interleaved with idle warmup, until [should_stop ()] or a [shutdown]
    request. *)
val run_loop : t -> should_stop:(unit -> bool) -> unit

(** [drain_shutdown t] closes the queue and answers every still-queued
    request with [rejected] ("server stopping") — the server calls it
    after the runner thread exits so no admitted request is left
    dangling. *)
val drain_shutdown : t -> unit

(** [shutdown_requested t] is set once a [shutdown] op was processed. *)
val shutdown_requested : t -> bool

(** [pending t] is the current queue depth. *)
val pending : t -> int

(** [stats_json t] is the [stats] op payload (graph, config, caches,
    queue, and a {!Observe.Metrics} snapshot). *)
val stats_json : t -> Support.Json.t
