(** The socket front-end of the query service: listeners, connection
    threads, and the runner thread that drives {!Core.run_loop}.

    Wire protocol (docs/SERVICE.md §2): line-delimited JSON — one
    request object per line in, one response object per line out.
    Responses carry the request's [id], so they may interleave across a
    connection's outstanding requests; a per-connection write lock keeps
    each response line atomic.

    Threading: one accept thread per listener, one reader thread per
    connection (they only parse and {!Core.submit} — admission never
    blocks on the engine), and one runner thread that owns the engine
    pool and the caches. Reply callbacks write from whichever thread
    resolves them (the runner for engine-answered queries, the reader
    for rejections), guarded by the connection's write lock. [SIGPIPE]
    is ignored for the process so vanished clients surface as [EPIPE]
    write errors, which close that connection only. *)

type t

type address =
  | Unix_sock of string  (** Path to a unix-domain socket (unlinked first). *)
  | Tcp of string * int  (** Bind host and port; port [0] lets the OS pick. *)

val address_to_string : address -> string

(** [start ~core ~address ()] binds, spawns the accept and runner
    threads, and returns immediately. Raises [Unix.Unix_error] if the
    address cannot be bound. *)
val start : core:Core.t -> address:address -> unit -> t

(** [bound_address t] is the actual address after binding — reports the
    OS-chosen port for [Tcp (_, 0)]. *)
val bound_address : t -> address

(** [wait t] blocks until the server stops: {!stop} was called or a
    [shutdown] request was processed (the runner drains already-admitted
    requests first, then the listener closes). *)
val wait : t -> unit

(** [request_stop t] flags shutdown without blocking — the only
    server call safe from a signal handler. The runner notices within
    one batcher cycle; follow with {!wait}. *)
val request_stop : t -> unit

(** [stop t] initiates shutdown from outside the protocol (tests) and
    waits like {!wait}. Idempotent. *)
val stop : t -> unit
