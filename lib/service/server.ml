type address =
  | Unix_sock of string
  | Tcp of string * int

let address_to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

type t = {
  core : Core.t;
  listen_fd : Unix.file_descr;
  bound : address;
  stopping : bool Atomic.t;
  runner : Thread.t;
  mutable acceptor : Thread.t;
  conns : (Unix.file_descr * Thread.t) list ref;
  conns_lock : Mutex.t;
}

let ignore_sigpipe () =
  (* A client that disconnects mid-reply must not kill the process;
     with SIGPIPE ignored the write fails with EPIPE and only that
     connection is torn down. (No-op on platforms without SIGPIPE.) *)
  try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
  with Invalid_argument _ -> ()

let bind_listener = function
  | Unix_sock path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.bind fd (Unix.ADDR_UNIX path)
       with e -> Unix.close fd; raise e);
      (fd, Unix_sock path)
  | Tcp (host, port) ->
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (Unix.ADDR_INET (addr, port))
       with e -> Unix.close fd; raise e);
      let bound_port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      (fd, Tcp (host, bound_port))

(* One reader thread per connection: parse a line, submit, move on.
   Replies go through [send], serialized by the connection's write lock
   because the runner thread answers engine queries while this thread
   may still be emitting admission rejections. *)
let serve_connection t fd =
  let write_lock = Mutex.create () in
  let alive = ref true in
  let send resp =
    let line = Support.Json.to_string (Protocol.response_to_json resp) ^ "\n" in
    Mutex.lock write_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock write_lock)
      (fun () ->
        if !alive then
          try
            let bytes = Bytes.of_string line in
            let len = Bytes.length bytes in
            let written = ref 0 in
            while !written < len do
              written :=
                !written + Unix.write fd bytes !written (len - !written)
            done
          with Unix.Unix_error _ | Sys_error _ -> alive := false)
  in
  let ic = Unix.in_channel_of_descr fd in
  (try
     while !alive && not (Atomic.get t.stopping) do
       match input_line ic with
       | exception End_of_file -> alive := false
       | exception Sys_error _ -> alive := false
       | "" -> ()
       | line -> (
           match Protocol.parse_request line with
           | Error (id, msg) -> send (Protocol.error ~id msg)
           | Ok req -> Core.submit t.core req ~reply:send)
     done
   with Unix.Unix_error _ -> ());
  Mutex.lock write_lock;
  alive := false;
  Mutex.unlock write_lock;
  (try Unix.close fd with Unix.Unix_error _ -> ())

let accept_loop t =
  let continue = ref true in
  while !continue && not (Atomic.get t.stopping) do
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> continue := false
    | fd, _ ->
        let thread = Thread.create (fun () -> serve_connection t fd) () in
        Mutex.lock t.conns_lock;
        t.conns := (fd, thread) :: !(t.conns);
        Mutex.unlock t.conns_lock
  done

let start ~core ~address () =
  ignore_sigpipe ();
  let listen_fd, bound = bind_listener address in
  Unix.listen listen_fd 64;
  let stopping = Atomic.make false in
  let t =
    {
      core;
      listen_fd;
      bound;
      stopping;
      runner =
        Thread.create
          (fun () ->
            Core.run_loop core ~should_stop:(fun () -> Atomic.get stopping))
          ();
      acceptor = Thread.self () (* replaced below, before [start] returns *);
      conns = ref [];
      conns_lock = Mutex.create ();
    }
  in
  t.acceptor <- Thread.create (fun () -> accept_loop t) ();
  t

let bound_address t = t.bound

(* A thread blocked in [accept] is not woken by another thread closing
   the fd; the portable wake-up is a throwaway self-connection — the
   acceptor returns, sees [stopping], and exits. *)
let poke_listener t =
  try
    let fd =
      match t.bound with
      | Unix_sock path ->
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX path);
          fd
      | Tcp (_, port) ->
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.connect fd
            (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
          fd
    in
    Unix.close fd
  with Unix.Unix_error _ -> ()

let wait t =
  (* The runner exits when [stop] was called or a shutdown request was
     processed; tear the sockets down only afterwards so clients get EOF
     only after their admitted requests were answered. *)
  Thread.join t.runner;
  Atomic.set t.stopping true;
  Core.drain_shutdown t.core;
  poke_listener t;
  Thread.join t.acceptor;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (* No new connections can appear now: snapshot after the acceptor is
     gone. A reader blocked in a partial line wakes on the half-close. *)
  Mutex.lock t.conns_lock;
  let conns = !(t.conns) in
  Mutex.unlock t.conns_lock;
  List.iter
    (fun (fd, _) ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    conns;
  List.iter (fun (_, thread) -> Thread.join thread) conns;
  (match t.bound with
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ())

let request_stop t = Atomic.set t.stopping true

let stop t =
  Atomic.set t.stopping true;
  wait t
