module Csr = Graphs.Csr
module Handle = Graphs.Handle
module Json = Support.Json
module Metrics = Observe.Metrics
module Span = Observe.Span

let null = Bucketing.Bucket_order.null_priority

type t = {
  pool : Parallel.Pool.t;
  mutable handle : Handle.t;
      (* the snapshot the distance vectors describe; [refresh] advances
         it together with the vectors after each mutation commit *)
  schedule : Ordered.Schedule.t;
  total : int;
  vertices : int array;  (* landmark vertex per slot, filled as warmed *)
  fwd : int array array;  (* fwd.(i).(v) = d(L_i, v) *)
  bwd : int array array;  (* bwd.(i).(v) = d(v, L_i) *)
  mutable warmed : int;
  warmed_counter : Metrics.counter;
  refreshed_counter : Metrics.counter;
  kept_counter : Metrics.counter;
}

let create ~pool ~handle ~schedule ~landmarks () =
  if landmarks < 0 then invalid_arg "Alt.create: negative landmark count";
  let n = Handle.num_vertices handle in
  let k = if n = 0 then 0 else min landmarks n in
  {
    pool;
    handle;
    schedule;
    total = k;
    vertices = Array.make (max 1 k) (-1);
    fwd = Array.make (max 1 k) [||];
    bwd = Array.make (max 1 k) [||];
    warmed = 0;
    warmed_counter = Metrics.counter Metrics.default "service.alt.landmarks_warmed";
    refreshed_counter = Metrics.counter Metrics.default "dynamic.alt.refreshed";
    kept_counter = Metrics.counter Metrics.default "dynamic.alt.kept";
  }

let total t = t.total
let warmed t = t.warmed

(* Farthest-first selection. The first landmark is the max-out-degree
   vertex (a hub reaches much of the graph, giving the selection metric
   something to work with); each next landmark maximizes the minimum
   forward distance to the already-warm set, preferring finite distances
   so landmarks spread across the reachable periphery before falling
   back to other components (by degree). *)
let next_landmark t =
  let graph = Handle.csr t.handle in
  let n = Csr.num_vertices graph in
  let taken v = Array.exists (fun u -> u = v) (Array.sub t.vertices 0 t.warmed) in
  if t.warmed = 0 then begin
    let degrees = Csr.out_degrees_cached graph in
    let best = ref 0 in
    for v = 1 to n - 1 do
      if degrees.(v) > degrees.(!best) then best := v
    done;
    !best
  end
  else begin
    let best = ref (-1) in
    let best_dist = ref (-1) in
    let fallback = ref (-1) in
    let fallback_deg = ref (-1) in
    let degrees = Csr.out_degrees_cached graph in
    for v = 0 to n - 1 do
      if not (taken v) then begin
        let min_d = ref max_int in
        for i = 0 to t.warmed - 1 do
          let d = t.fwd.(i).(v) in
          if d < !min_d then min_d := d
        done;
        if !min_d <> null && !min_d > !best_dist then begin
          best_dist := !min_d;
          best := v
        end;
        if degrees.(v) > !fallback_deg then begin
          fallback_deg := degrees.(v);
          fallback := v
        end
      end
    done;
    if !best >= 0 then !best else !fallback
  end

let warm_one t =
  if t.warmed >= t.total then false
  else begin
    Span.with_ "service.alt.warm" (fun () ->
        let l = next_landmark t in
        let graph = Handle.csr t.handle in
        let transpose = Handle.transpose_csr t.handle in
        let fwd =
          Algorithms.Sssp_delta.run ~pool:t.pool ~graph ~schedule:t.schedule
            ~source:l ()
        in
        let bwd =
          (* The transpose of the transpose is the forward graph: passing
             it keeps pull-direction schedules viable for the backward
             run. *)
          Algorithms.Sssp_delta.run ~pool:t.pool ~graph:transpose
            ~transpose:graph ~schedule:t.schedule ~source:l ()
        in
        t.vertices.(t.warmed) <- l;
        t.fwd.(t.warmed) <- fwd.Algorithms.Sssp_delta.dist;
        t.bwd.(t.warmed) <- bwd.Algorithms.Sssp_delta.dist;
        t.warmed <- t.warmed + 1;
        Metrics.incr t.warmed_counter ~tid:0 ());
    true
  end

let warm_all t =
  let added = ref 0 in
  while warm_one t do
    incr added
  done;
  !added

(* After a mutation commit: repair every warm landmark's two vectors with
   the incremental engine instead of re-running 2k full SSSPs. The
   forward vector repairs against [batch] on the forward graphs; the
   backward vector repairs against the reversed batch on the two
   transposes (kept in sync by construction). A landmark whose affected
   set was empty on both sides kept its vectors bit-for-bit — it is
   counted [kept], not [refreshed]. *)
let refresh t ~old_handle ~handle ~batch =
  t.handle <- handle;
  if t.warmed = 0 || Array.length batch = 0 then (0, 0)
  else
    Span.with_ "service.alt.refresh" (fun () ->
        let old_graph = Handle.csr old_handle in
        let graph = Handle.csr handle in
        let old_transpose = Handle.transpose_csr old_handle in
        let transpose = Handle.transpose_csr handle in
        let rev = Graphs.Delta.reverse batch in
        let refreshed = ref 0 and kept = ref 0 in
        for i = 0 to t.warmed - 1 do
          let l = t.vertices.(i) in
          let fwd =
            Algorithms.Sssp_delta.run_incremental ~pool:t.pool ~old_graph ~graph
              ~handle ~schedule:t.schedule ~source:l ~batch ~prev:t.fwd.(i) ()
          in
          let bwd =
            Algorithms.Sssp_delta.run_incremental ~pool:t.pool
              ~old_graph:old_transpose ~graph:transpose ~transpose:graph
              ~schedule:t.schedule ~source:l ~batch:rev ~prev:t.bwd.(i) ()
          in
          t.fwd.(i) <- fwd.Algorithms.Sssp_delta.result.Algorithms.Sssp_delta.dist;
          t.bwd.(i) <- bwd.Algorithms.Sssp_delta.result.Algorithms.Sssp_delta.dist;
          if
            fwd.Algorithms.Sssp_delta.affected > 0
            || bwd.Algorithms.Sssp_delta.affected > 0
          then incr refreshed
          else incr kept
        done;
        if !refreshed > 0 then
          Metrics.incr t.refreshed_counter ~tid:0 ~by:!refreshed ();
        if !kept > 0 then Metrics.incr t.kept_counter ~tid:0 ~by:!kept ();
        (!refreshed, !kept))

let heuristic t ~target =
  if t.warmed = 0 then None
  else begin
    (* Hoist the target's landmark distances: the closure runs once per
       relaxed edge, so per-call work must stay a short loop over ints. *)
    let k = t.warmed in
    let fwd_t = Array.init k (fun i -> t.fwd.(i).(target)) in
    let bwd_t = Array.init k (fun i -> t.bwd.(i).(target)) in
    let fwd = Array.sub t.fwd 0 k and bwd = Array.sub t.bwd 0 k in
    Some
      (fun v ->
        let h = ref 0 in
        for i = 0 to k - 1 do
          let ft = fwd_t.(i) and fv = fwd.(i).(v) in
          (* d(L,t) - d(L,v) <= d(v,t); only finite pairs inform. *)
          if ft <> null && fv <> null && ft - fv > !h then h := ft - fv;
          let bt = bwd_t.(i) and bv = bwd.(i).(v) in
          (* d(v,L) - d(t,L) <= d(v,t). *)
          if bt <> null && bv <> null && bv - bt > !h then h := bv - bt
        done;
        !h)
  end

let landmark_vertices t = Array.to_list (Array.sub t.vertices 0 t.warmed)

let to_json t =
  Json.Obj
    [
      ("landmarks", Json.Int t.total);
      ("warmed", Json.Int t.warmed);
      ("vertices", Json.List (List.map (fun v -> Json.Int v) (landmark_vertices t)));
    ]
