(** The ALT landmark-distance cache (A*, Landmarks, Triangle inequality;
    Goldberg & Harrelson).

    [k] landmark vertices each carry two exact distance vectors computed
    by Δ-stepping on the pool: forward distances [d(L, ·)] on the graph
    and backward distances [d(·, L)] on the cached transpose. For a
    query with target [t], every warm landmark yields two lower bounds
    on [d(v, t)] from the triangle inequality —
    [d(L,t) − d(L,v)] and [d(v,L) − d(t,L)] — and the heuristic is
    their max over landmarks, clamped at zero, using only finite
    entries. Each bound is admissible {e and} consistent, and the max of
    consistent bounds is consistent, so A* keeps its exact early exit.

    Warmup is incremental ({!warm_one}: one landmark pair per call) so
    the service can warm in the background whenever its queue is idle;
    {!warm_all} (the [warm_alt] op) forces the rest synchronously.
    Landmarks are chosen farthest-first: the first is the max-out-degree
    vertex, each next maximizes the minimum forward distance to the
    landmarks already warmed — the standard heuristic that pushes
    landmarks to the graph's periphery where their bounds are tight.

    Each graph snapshot is immutable, so the cache is valid until the
    next mutation commit; {!refresh} then repairs the warm vectors
    incrementally — only the landmarks whose affected set is non-empty
    pay for recompute (docs/SERVICE.md §4.4). *)

type t

(** [create ~pool ~handle ~schedule ~landmarks ()] prepares a cold cache
    of [landmarks] slots ([0] disables it: {!heuristic} stays [None]).
    No distances are computed yet. *)
val create :
  pool:Parallel.Pool.t ->
  handle:Graphs.Handle.t ->
  schedule:Ordered.Schedule.t ->
  landmarks:int ->
  unit ->
  t

(** [total t] is the configured landmark count. *)
val total : t -> int

(** [warmed t] is how many landmarks hold both distance vectors. *)
val warmed : t -> int

(** [warm_one t] computes the next landmark's vectors (two SSSP runs on
    the pool); [false] when the cache was already fully warm. Emits the
    [service.alt.warm] span and bumps [service.alt.landmarks_warmed]. *)
val warm_one : t -> bool

(** [warm_all t] warms every remaining landmark; returns how many it
    added. *)
val warm_all : t -> int

(** [refresh t ~old_handle ~handle ~batch] re-points the cache at the
    new snapshot [handle] (= [old_handle] after [batch]) and repairs
    every warm landmark's forward/backward vectors with
    {!Algorithms.Sssp_delta.run_incremental} — the backward side runs
    the reversed batch on the two transposes. Returns
    [(refreshed, kept)]: landmarks whose vectors changed vs. landmarks
    the affected-set plan proved untouched. Emits the
    [service.alt.refresh] span and the [dynamic.alt.refreshed]/
    [dynamic.alt.kept] counters. Consumer thread only (forces lazy
    transposes). *)
val refresh :
  t ->
  old_handle:Graphs.Handle.t ->
  handle:Graphs.Handle.t ->
  batch:Graphs.Delta.batch ->
  int * int

(** [heuristic t ~target] is the admissible lower-bound function for
    [target], or [None] while no landmark is warm (callers fall back to
    [h = 0]). The closure hoists the per-target landmark distances out
    of the per-vertex evaluation. *)
val heuristic : t -> target:int -> (int -> int) option

(** [landmark_vertices t] lists the warm landmarks' vertex ids. *)
val landmark_vertices : t -> int list

(** [to_json t] is the cache state for the [stats] op:
    [{"landmarks": k, "warmed": w, "vertices": [...]}]. *)
val to_json : t -> Support.Json.t
