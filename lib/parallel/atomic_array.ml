(* OCaml 5.1 has no flat atomic int array primitive, so each cell is a
   boxed [int Atomic.t] (a 2-word block). Two layout decisions reclaim most
   of the cost of that representation:

   - [make] allocates all cells in one tight loop, so they sit back-to-back
     on the heap in index order: a scan over [i, i+1, ...] touches
     consecutive cache lines (4 cells per 64-byte line) instead of chasing
     pointers to scattered boxes;
   - [make_padded] spaces the *used* cells a cache line apart (by
     interleaving never-read spacer cells in the same allocation stream),
     for small fetch_add-heavy counter arrays indexed by worker id, where
     4-cells-per-line is false sharing, not locality.

   Access discipline: every public operation bounds-checks its index once
   (in [cell]) and then runs on the unboxed cell reference — CAS retry
   loops never re-index the array, and bulk operations use [unsafe_get]
   inside their loops. *)

type t = {
  cells : int Atomic.t array;
  length : int;
  shift : int; (* cell index of logical [i] is [i lsl shift] *)
  id : int; (* allocation order, names the array in race findings *)
  shadow : int array Atomic.t; (* race-mode per-slot (episode, tid) tags *)
}

(* cells/line: an Atomic.t box is 2 words, a cache line holds 4 of them. *)
let pad_shift = 2

let next_id = Atomic.make 0

let alloc ~shift n v =
  let cells = Array.init (n lsl shift) (fun _ -> Atomic.make v) in
  {
    cells;
    length = n;
    shift;
    id = Atomic.fetch_and_add next_id 1;
    shadow = Atomic.make [||];
  }

let make n v = alloc ~shift:0 n v
let make_padded n v = alloc ~shift:pad_shift n v
let length a = a.length
let id a = a.id

let[@inline] cell a i =
  if i < 0 || i >= a.length then invalid_arg "Atomic_array: index out of bounds";
  Array.unsafe_get a.cells (i lsl a.shift)

let get a i = Atomic.get (cell a i)

(* Race-mode shadow tracking for plain [set]. Tags pack as
   [(episode lsl 8) lor tid]; a previous tag from the *same* episode with
   a *different* tid means two workers plain-set this slot inside one
   [Pool.run_workers] round. The shadow is itself written plainly — a
   missed detection under extreme reordering is acceptable, a false
   positive is impossible (same-episode different-tid tags only arise
   from genuinely overlapping sets). Allocated lazily on first tracked
   write so arrays in race-disabled runs pay nothing. *)
let[@inline never] track_set a i =
  let shadow =
    let s = Atomic.get a.shadow in
    if s != [||] then s
    else begin
      let fresh = Array.make a.length 0 in
      if Atomic.compare_and_set a.shadow [||] fresh then fresh
      else Atomic.get a.shadow
    end
  in
  let tid = Race.current_tid () land 255 in
  let episode = Race.current_episode () in
  let tag = (episode lsl 8) lor tid in
  let prev = shadow.(i) in
  if prev <> 0 && prev lsr 8 = episode && prev land 255 <> tid then
    Race.report
      {
        Race.array_id = a.id;
        slot = i;
        first_tid = prev land 255;
        second_tid = tid;
        episode;
      };
  shadow.(i) <- tag

let set a i v =
  Atomic.set (cell a i) v;
  if Race.enabled () then track_set a i

let compare_and_set a i ~expected ~desired =
  Atomic.compare_and_set (cell a i) expected desired

let fetch_min a i v =
  let c = cell a i in
  let rec retry () =
    let cur = Atomic.get c in
    if v >= cur then false
    else if Atomic.compare_and_set c cur v then true
    else retry ()
  in
  retry ()

let fetch_max a i v =
  let c = cell a i in
  let rec retry () =
    let cur = Atomic.get c in
    if v <= cur then false
    else if Atomic.compare_and_set c cur v then true
    else retry ()
  in
  retry ()

let fetch_add a i d = Atomic.fetch_and_add (cell a i) d

let add_with_floor a i ~delta ~floor =
  let c = cell a i in
  let rec retry () =
    let cur = Atomic.get c in
    (* A decrement must leave values already at or below the floor untouched
       (clamping them *up* to the floor would un-finalize peeled vertices). *)
    if delta < 0 && cur <= floor then None
    else begin
      let target = max floor (cur + delta) in
      if target = cur then None
      else if Atomic.compare_and_set c cur target then Some (cur, target)
      else retry ()
    end
  in
  retry ()

let to_array a =
  Array.init a.length (fun i ->
      Atomic.get (Array.unsafe_get a.cells (i lsl a.shift)))

let of_array src =
  let a = alloc ~shift:0 (Array.length src) 0 in
  Array.iteri (fun i v -> Atomic.set (Array.unsafe_get a.cells i) v) src;
  a

let blit_from a src =
  if a.length <> Array.length src then
    invalid_arg "Atomic_array.blit_from: length mismatch";
  for i = 0 to a.length - 1 do
    Atomic.set
      (Array.unsafe_get a.cells (i lsl a.shift))
      (Array.unsafe_get src i)
  done
