(** Debug-mode detector for cross-worker plain [Atomic_array.set] overlap.

    Two workers that both plain-[set] the same slot inside one
    {!Pool.run_workers} episode are racing: unlike [fetch_min]/[CAS]
    updates, plain stores carry no reconciliation, so whichever lands last
    silently wins. The engine's discipline is that plain sets are only
    ever issued by a slot's {e owner} (pull-mode destinations, per-worker
    accumulator slots, reservation winners); this module checks that
    discipline dynamically.

    Mechanism: {!Pool} brackets every [run_workers] episode with a bump of
    a global episode counter and publishes each worker's tid in
    domain-local storage; {!Atomic_array.set} — when the detector is
    enabled — tags a shadow slot with [(episode, tid)] and reports a
    finding when it overwrites a tag from the {e same} episode with a
    {e different} tid. Detection is cross-worker exact in the common case
    (the second writer sees the first writer's tag) and best-effort under
    extreme write reordering; it never reports a false positive, because a
    same-episode different-tid shadow tag is only ever produced by an
    actual overlapping plain set.

    The detector is {b off by default}; disabled, the runtime pays one
    atomic flag read per [set] and per episode boundary (the
    {!Observe.Span} pattern). Enable it for differential sweeps
    ([check_runner --race]) and the chaos tests — not for benchmarks.

    Scope: only {!Atomic_array.set} is tracked. [blit_from], [of_array],
    and the CAS-family operations bypass the shadow (they are either
    initialization-time or carry their own reconciliation). *)

type finding = {
  array_id : int;  (** Allocation id of the {!Atomic_array} (see its docs). *)
  slot : int;
  first_tid : int;
  second_tid : int;
  episode : int;
}

(** [enabled ()] is the process-wide detector state. *)
val enabled : unit -> bool

(** [enable ()] switches shadow tracking on (and opens a fresh episode, so
    writes from the disabled period cannot produce findings). *)
val enable : unit -> unit

val disable : unit -> unit

(** [findings ()] is the recorded findings, oldest first (capped at 256;
    {!num_findings} keeps the true count). *)
val findings : unit -> finding list

(** [num_findings ()] is the total number of findings reported since the
    last {!clear}, including any dropped past the cap. *)
val num_findings : unit -> int

val clear : unit -> unit

(** [report f] records a finding (called by {!Atomic_array}). *)
val report : finding -> unit

(** Episode plumbing, called by {!Pool} at episode boundaries. Episodes
    are globally monotonic and never reused. *)

val current_episode : unit -> int
val next_episode : unit -> unit

(** Per-domain worker identity, published by {!Pool.run_workers} around
    each job execution. The main domain reads 0 between episodes. *)

val current_tid : unit -> int
val set_tid : int -> unit

val pp_finding : Format.formatter -> finding -> unit
