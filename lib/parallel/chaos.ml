(* Seeded scheduling perturbation. [Pool] calls [point ()] at the
   interleaving-sensitive spots (worker wake, chunk claim, barrier
   arrival); with chaos off that is a single atomic flag read. With it
   on, each domain draws from its own deterministic splitmix64 stream
   and occasionally stalls — short cpu_relax bursts most of the time, a
   rare real sleep — so repeated runs with different seeds explore
   different interleavings without any change to the engine itself. *)

let enabled_flag = Atomic.make false
let seed = Atomic.make 0

(* Bumped on every [enable] so per-domain streams lazily reseed: a domain
   that lives across two chaos sessions must not keep its old stream. *)
let generation = Atomic.make 0

(* Distinguishes streams of domains enabled in the same generation. *)
let stream_counter = Atomic.make 0

type stream = { mutable rng : Support.Rng.t; mutable generation : int }

let stream_key =
  Domain.DLS.new_key (fun () -> { rng = Support.Rng.create 0; generation = 0 })

let enabled () = Atomic.get enabled_flag

let enable ~seed:s =
  Atomic.set seed s;
  Atomic.incr generation;
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

let[@inline never] perturb () =
  let st = Domain.DLS.get stream_key in
  let gen = Atomic.get generation in
  if st.generation <> gen then begin
    st.rng <-
      Support.Rng.create
        ((Atomic.get seed * 1_000_003) + Atomic.fetch_and_add stream_counter 1);
    st.generation <- gen
  end;
  let r = Support.Rng.next st.rng in
  (* p = 1/8: spin 1-128 relax steps — enough to shuffle chunk-claim
     order; p = 1/256 on top: a real 20us sleep, long enough to push the
     waiters into the condvar slow path. *)
  if r land 7 = 0 then
    for _ = 0 to (r lsr 3) land 127 do
      Domain.cpu_relax ()
    done;
  if r land 255 = 255 then Unix.sleepf 2e-5

let[@inline] point () = if Atomic.get enabled_flag then perturb ()

(* GRAPHIT_CHAOS=<seed> turns chaos on for any binary without code
   changes (GRAPHIT_CHAOS=1 is just seed 1). *)
let () =
  match Sys.getenv_opt "GRAPHIT_CHAOS" with
  | None | Some "" | Some "0" -> ()
  | Some s -> (
      match int_of_string_opt s with
      | Some n -> enable ~seed:n
      | None -> enable ~seed:(Hashtbl.hash s))
