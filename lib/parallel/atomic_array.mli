(** Arrays of integers with compare-and-swap updates.

    This is the OCaml counterpart of the [CAS]/[writeMin]/[fetch_add]
    primitives the paper's generated C++ uses on distance and degree arrays
    (Figure 2 and Figure 9). Cells are [Atomic.t] values, so concurrent
    updates from multiple domains are sequentially consistent. *)

type t

(** [make n v] is an array of [n] cells, all holding [v]. The cells are
    allocated back-to-back in index order, so sequential scans have array
    locality despite the boxed representation. *)
val make : int -> int -> t

(** [make_padded n v] is {!make} with each cell on its own cache line. Use
    for small, contention-heavy counter arrays (per-worker [fetch_add]
    slots), where packing 4 cells per line causes false sharing; never for
    per-vertex vectors, where density is what matters. *)
val make_padded : int -> int -> t

(** [length a] is the cell count. *)
val length : t -> int

(** [id a] is the array's allocation id (process-wide, in allocation
    order). Its only purpose is to correlate {!Race.finding} records with
    the arrays they name. *)
val id : t -> int

(** [get a i] reads cell [i]. *)
val get : t -> int -> int

(** [set a i v] writes cell [i] unconditionally. Plain sets must follow
    the ownership discipline — only one worker may plain-set a given slot
    within one [Pool.run_workers] episode; the {!Race} debug mode checks
    exactly this. ([blit_from], [of_array], and the CAS-family updates
    are exempt: they are initialization-time or self-reconciling.) *)
val set : t -> int -> int -> unit

(** [compare_and_set a i ~expected ~desired] atomically replaces the value of
    cell [i] with [desired] when it currently holds [expected]; returns
    whether the swap happened. *)
val compare_and_set : t -> int -> expected:int -> desired:int -> bool

(** [fetch_min a i v] atomically lowers cell [i] to [v] when [v] is smaller;
    returns whether the cell changed ([writeMin] in the paper). *)
val fetch_min : t -> int -> int -> bool

(** [fetch_max a i v] atomically raises cell [i] to [v] when [v] is larger;
    returns whether the cell changed. *)
val fetch_max : t -> int -> int -> bool

(** [fetch_add a i d] atomically adds [d] to cell [i]; returns the value the
    cell held before the addition. *)
val fetch_add : t -> int -> int -> int

(** [add_with_floor a i ~delta ~floor] atomically adds [delta] (which may be
    negative) but never lets the cell drop below [floor]; returns
    [Some (old, new_)] when the cell changed, [None] when it was already at
    or below the floor. This implements [updatePrioritySum] with a minimum
    threshold (Table 1 of the paper), as used by k-core. *)
val add_with_floor : t -> int -> delta:int -> floor:int -> (int * int) option

(** [to_array a] is a snapshot copy of the cells. *)
val to_array : t -> int array

(** [of_array src] is a fresh atomic array holding the elements of [src]. *)
val of_array : int array -> t

(** [blit_from a src] overwrites every cell of [a] from [src]. The lengths
    must match. *)
val blit_from : t -> int array -> unit
