(** A fixed-size pool of OCaml domains, the substrate that stands in for the
    paper's Cilk/OpenMP runtime.

    The pool supports the idioms used by the ordered-graph engines:

    - {!run_workers} runs one SPMD task per worker, mirroring the
      [#pragma omp parallel] regions of the generated eager code (Figure 9(c)
      of the paper). Each invocation is one global synchronization: all
      workers finish before it returns. Rounds are synchronized by a
      {e spin-then-block barrier}: workers busy-wait on atomics with
      [Domain.cpu_relax] and exponential backoff, falling back to a
      mutex/condvar only after a spin budget, so back-to-back rounds never
      pay a kernel round-trip while idle pools still sleep.
    - {!parallel_for} and friends distribute an index range over the
      workers, mirroring [#pragma omp for]. The {!sched} policy picks
      between static block partitioning, fixed dynamic chunks, and guided
      (decaying-chunk) scheduling.
    - {!parallel_for_ranges} hands workers whole [(lo, hi)] chunks so the
      caller runs a tight local loop instead of one closure call per
      element — the hot-path form used by the engine and baselines.

    A pool with one worker executes everything inline on the calling domain,
    which keeps single-threaded runs deterministic and cheap. *)

type t

(** Loop scheduling policy, mirroring OpenMP's [schedule] clause:
    - [Static]: one contiguous block per worker; zero shared-counter
      traffic, best when per-index work is uniform;
    - [Dynamic]: fixed-size chunks claimed off a shared atomic cursor;
      best when per-index work is skewed (frontier vertices with wildly
      different degrees);
    - [Guided]: chunk size decays from [remaining / (2 * workers)] down to
      the requested [chunk]; few cursor bumps up front, fine-grained
      balancing at the tail. *)
type sched =
  | Static
  | Dynamic
  | Guided

(** [create ?spin_budget ~num_workers ()] spawns [num_workers - 1] helper
    domains. The caller participates as worker 0. [spin_budget] bounds the
    number of [Domain.cpu_relax] steps spent busy-waiting at each barrier
    before blocking on a condition variable; it defaults high when the pool
    fits the machine and near-zero when oversubscribed, and [0] recovers
    the always-block behaviour of the seed implementation. Raises
    [Invalid_argument] when [num_workers < 1]. *)
val create : ?spin_budget:int -> num_workers:int -> unit -> t

(** [num_workers pool] is the worker count, including the caller. *)
val num_workers : t -> int

(** [barrier_wait_seconds pool] is the cumulative wall-clock time worker 0
    has spent waiting for helpers at the end of {!run_workers} rounds —
    the synchronization cost the paper's bucket fusion exists to avoid.
    Always [0.] on single-worker pools. *)
val barrier_wait_seconds : t -> float

(** [run_workers pool f] runs [f tid] on every worker, [tid] ranging over
    [0, num_workers). Returns when all workers have finished. If any worker
    raises, one of the exceptions is re-raised on the caller after all
    workers have stopped. Not reentrant. *)
val run_workers : t -> (int -> unit) -> unit

(** [set_episode_hook h] installs (or with [None], removes) a process-wide
    observer called once per {!run_workers} episode — including the inline
    single-worker path and the [parallel_for] family, which run on top of
    it — with the pool's worker count and the episode's wall-clock
    seconds. With no hook installed (the default), episodes pay no clock
    read. This is the attachment point for the observability layer
    ([Observe.Span.install_pool_hook]); the hook runs on the calling
    domain and must not use the pool. *)
val set_episode_hook : (workers:int -> seconds:float -> unit) option -> unit

(** [set_worker_hook h] installs (or with [None], removes) a process-wide
    per-worker observer: for every {!run_workers} episode each
    participating worker calls [h ~tid ~enter:true] on its own domain
    just before running its share of the job and [h ~tid ~enter:false]
    just after (also when the job raises) — including the inline
    single-worker path. This is the attachment point for per-worker
    timeline tracing ([Observe.Tracer.install_pool_hooks]); the hook
    runs on the worker's domain and must be lock-free and must not use
    the pool. With no hook installed (the default) each worker pays one
    ref read per episode. *)
val set_worker_hook : (tid:int -> enter:bool -> unit) option -> unit

(** A shared work cursor for SPMD loops written directly on top of
    {!run_workers} (e.g. when a per-worker epilogue must run after the
    loop, as in the engine's bucket-fusion drain). *)
type range_cursor

(** [range_cursor pool ?sched ?chunk ?align ~lo ~hi ()] is a fresh cursor
    over [lo, hi) for [pool]'s workers. [align] (default 1) rounds every
    claimed extent up to a multiple, so when [lo] is itself a multiple of
    [align] every range boundary except the final tail at [hi] is aligned
    — pass 8 (one 64-byte cache line of ints) to keep workers' writes to
    adjacent per-vertex arrays off each other's lines. *)
val range_cursor :
  t ->
  ?sched:sched ->
  ?chunk:int ->
  ?align:int ->
  lo:int ->
  hi:int ->
  unit ->
  range_cursor

(** [next_range cursor ~tid] claims the next [(lo, hi)] chunk for worker
    [tid], or [None] when the range is exhausted (for [Static], when the
    worker's block has been handed out). *)
val next_range : range_cursor -> tid:int -> (int * int) option

(** [parallel_for_ranges pool ?sched ?chunk ~lo ~hi f] partitions [lo, hi)
    into chunks per [sched] (default [Dynamic], chunk 256) and calls
    [f ~lo ~hi] once per chunk, in parallel. The caller's loop body runs as
    a tight local loop: no per-element closure call, no per-element
    shared-counter traffic. *)
val parallel_for_ranges :
  t -> ?sched:sched -> ?chunk:int -> lo:int -> hi:int ->
  (lo:int -> hi:int -> unit) -> unit

(** [parallel_for_ranges_tid] is {!parallel_for_ranges} for bodies that
    need the worker id: [f ~tid ~lo ~hi]. *)
val parallel_for_ranges_tid :
  t -> ?sched:sched -> ?chunk:int -> lo:int -> hi:int ->
  (tid:int -> lo:int -> hi:int -> unit) -> unit

(** [parallel_for pool ?sched ?chunk ~lo ~hi f] applies [f i] for every
    [lo <= i < hi], distributing indices across workers in chunks of [chunk]
    (default 256) per the scheduling policy (default [Dynamic]). *)
val parallel_for :
  t -> ?sched:sched -> ?chunk:int -> lo:int -> hi:int -> (int -> unit) -> unit

(** [parallel_for_tid pool ?sched ?chunk ~lo ~hi f] is {!parallel_for} for
    bodies that need the worker id, e.g. to write into per-worker
    accumulators: [f] is called as [f ~tid i]. *)
val parallel_for_tid :
  t -> ?sched:sched -> ?chunk:int -> lo:int -> hi:int ->
  (tid:int -> int -> unit) -> unit

(** [parallel_for_reduce pool ?sched ?chunk ~lo ~hi ~neutral ~combine f]
    folds the per-index values [f i] into a single result. [combine] must
    be associative and commutative with [neutral] as identity. *)
val parallel_for_reduce :
  t ->
  ?sched:sched ->
  ?chunk:int ->
  lo:int ->
  hi:int ->
  neutral:'a ->
  combine:('a -> 'a -> 'a) ->
  (int -> 'a) ->
  'a

(** [shutdown pool] terminates the helper domains. The pool must not be used
    afterwards. Idempotent. *)
val shutdown : t -> unit

(** [with_pool ?spin_budget ~num_workers f] creates a pool, passes it to
    [f], and shuts it down even when [f] raises. *)
val with_pool : ?spin_budget:int -> num_workers:int -> (t -> 'a) -> 'a
