let exclusive a =
  let n = Array.length a in
  let out = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    out.(i + 1) <- out.(i) + a.(i)
  done;
  out

(* One barrier episode instead of two: the block-sum and block-write phases
   run inside a single [run_workers] call, separated by an internal
   arrival-counter barrier. Publishing each block total with an atomic
   increment and waiting until all workers have arrived orders every plain
   [block_totals] write before every read (happens-before through the
   counter), and the per-block offsets are then computed redundantly by
   each worker — a [workers]-length scan, far cheaper than a second global
   round trip. *)
let exclusive_parallel pool a =
  let n = Array.length a in
  let workers = Pool.num_workers pool in
  if workers = 1 || n < 4096 then exclusive a
  else begin
    let out = Array.make (n + 1) 0 in
    let block = (n + workers - 1) / workers in
    let block_totals = Array.make workers 0 in
    let arrivals = Atomic.make 0 in
    Pool.run_workers pool (fun tid ->
        let lo = tid * block and hi = min n ((tid + 1) * block) in
        (* Phase 1: sum this worker's block. *)
        let total = ref 0 in
        for i = lo to hi - 1 do
          total := !total + Array.unsafe_get a i
        done;
        block_totals.(tid) <- !total;
        Atomic.incr arrivals;
        while Atomic.get arrivals < workers do
          Domain.cpu_relax ()
        done;
        (* Phase 2: every block total is now visible; scan the ones before
           this block and write the block's exclusive sums. *)
        let acc = ref 0 in
        for t = 0 to tid - 1 do
          acc := !acc + block_totals.(t)
        done;
        if tid = workers - 1 then out.(n) <- !acc + block_totals.(tid);
        for i = lo to hi - 1 do
          out.(i) <- !acc;
          acc := !acc + Array.unsafe_get a i
        done);
    out
  end
