(** Seeded scheduling chaos for shaking out interleaving bugs.

    The SPMD engine is only correct if no round depends on {e which}
    worker claims a chunk or {e when} a worker reaches the barrier. This
    module perturbs exactly those decisions: {!Pool} calls {!point} at
    worker wake-up, at every chunk claim ({!Pool.next_range}), and at
    barrier arrival, and [point] — when enabled — makes the calling
    domain stall for a pseudo-random beat (usually a short
    [Domain.cpu_relax] burst, occasionally a real 20µs sleep that forces
    the condvar slow path).

    Stalls are drawn from per-domain splitmix64 streams derived from one
    global seed, so a chaos run is reproducible given the same seed,
    worker count, and schedule — that is what makes the repro lines
    printed by [check_runner] actionable. Chaos never changes results of
    a correct program; it only widens the set of interleavings a test
    run observes. Pair it with {!Race} to turn latent plain-write races
    into findings.

    Off by default; disabled cost is one atomic flag read per injection
    point ({!Observe.Span} pattern). Enable programmatically or via the
    [GRAPHIT_CHAOS=<seed>] environment variable (read once at startup). *)

val enabled : unit -> bool

(** [enable ~seed] turns injection on. Per-domain streams reseed from
    [seed] on their next {!point}, so re-enabling with a fresh seed
    explores a different set of interleavings. *)
val enable : seed:int -> unit

val disable : unit -> unit

(** [point ()] maybe stalls the calling domain. Called by {!Pool} at
    scheduling decision points; safe to call from any domain. *)
val point : unit -> unit
