(* SPMD pool with a spin-then-block barrier.

   The seed implementation paid a mutex + condvar broadcast + wakeup for
   every [run_workers] round. Ordered graph algorithms run hundreds of
   thousands of rounds on high-diameter graphs (the whole point of bucket
   fusion, Table 6 of the paper, is to cut that count), so the round
   turnaround itself must be cheap. Like GAPBS and Julienne we busy-wait:
   all cross-round signalling goes through three atomics ([epoch],
   [remaining], [stop_flag]); workers spin on them with [Domain.cpu_relax]
   and exponential backoff, and only fall back to the mutex + condvar slow
   path once a spin budget is exhausted, so idle or oversubscribed pools do
   not burn CPU. *)

type sched =
  | Static
  | Dynamic
  | Guided

type t = {
  num_workers : int;
  spin_budget : int;
  (* Hot-path state: every per-round handshake is on these atomics. *)
  epoch : int Atomic.t; (* bumped to publish a job *)
  remaining : int Atomic.t; (* helpers yet to finish the current job *)
  failure : exn option Atomic.t;
  stop_flag : bool Atomic.t;
  (* Cold-path state: blocking fallback after the spin budget. [sleepers]
     and [done_waiters] let the fast path skip taking the mutex entirely
     when nobody is blocked. *)
  sleepers : int Atomic.t;
  done_waiters : int Atomic.t;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : (int -> unit) option; (* published by the [epoch] bump *)
  mutable barrier_wait : float; (* cumulative seconds worker 0 waited *)
  mutable domains : unit Domain.t list;
}

(* Spin until [cond ()] holds or [budget] cpu_relax steps have been spent;
   returns whether the condition was observed. The pause length doubles up
   to 64 so a long wait backs off the interconnect. *)
let spin_until ~budget cond =
  let rec go spent pause =
    if cond () then true
    else if spent >= budget then false
    else begin
      for _ = 1 to pause do
        Domain.cpu_relax ()
      done;
      go (spent + pause) (min (2 * pause) 64)
    end
  in
  go 0 1

let note_failure pool exn =
  (* Keep the first failure; later ones lose the race and are dropped, as
     in the seed implementation. *)
  ignore (Atomic.compare_and_set pool.failure None (Some exn))

(* Mark this worker's share of the round done. The [done_waiters] check
   pairs with the caller's increment-then-recheck under the mutex: with
   sequentially consistent atomics one side always sees the other, so the
   broadcast cannot be lost. *)
let finish_one pool =
  Chaos.point ();
  if Atomic.fetch_and_add pool.remaining (-1) = 1 then
    if Atomic.get pool.done_waiters > 0 then begin
      Mutex.lock pool.mutex;
      Condition.broadcast pool.work_done;
      Mutex.unlock pool.mutex
    end

(* Per-worker observability hook (lib/observe installs the timeline
   tracer; this module cannot depend on it). [None] is the shipped
   default: each worker then pays one ref read per episode. *)
let worker_hook : (tid:int -> enter:bool -> unit) option ref = ref None
let set_worker_hook h = worker_hook := h

(* Every job execution — helper loop, caller's share, and the inline
   single-worker path — funnels through here so the per-worker timeline
   sees exactly one enter/exit pair per worker per episode. *)
let run_job job tid =
  if Race.enabled () then Race.set_tid tid;
  match !worker_hook with
  | None -> job tid
  | Some hook -> (
      hook ~tid ~enter:true;
      match job tid with
      | () -> hook ~tid ~enter:false
      | exception exn ->
          hook ~tid ~enter:false;
          raise exn)

let worker_loop pool tid =
  let seen = ref 0 in
  let rec loop () =
    let woke =
      spin_until ~budget:pool.spin_budget (fun () ->
          Atomic.get pool.epoch <> !seen || Atomic.get pool.stop_flag)
    in
    if not woke then begin
      (* Register as a sleeper, then re-check the epoch under the mutex:
         a publisher that missed our registration has already bumped the
         epoch, which the [while] observes before waiting. *)
      Mutex.lock pool.mutex;
      Atomic.incr pool.sleepers;
      while Atomic.get pool.epoch = !seen && not (Atomic.get pool.stop_flag) do
        Condition.wait pool.work_ready pool.mutex
      done;
      Atomic.decr pool.sleepers;
      Mutex.unlock pool.mutex
    end;
    if not (Atomic.get pool.stop_flag) then begin
      Chaos.point ();
      seen := Atomic.get pool.epoch;
      (* [job] was written before the epoch bump, so observing the bump
         makes this plain read well-defined (publication via atomics). *)
      let job =
        match pool.job with
        | Some job -> job
        | None -> assert false
      in
      (try run_job job tid with exn -> note_failure pool exn);
      finish_one pool;
      loop ()
    end
  in
  loop ()

let default_spin_budget ~num_workers =
  (* Spinning only helps when every worker owns a core. On an oversubscribed
     machine (more workers than cores) every relax step burns the quantum
     the domain we are waiting for needs, so the only sane budget is 0:
     block immediately, exactly the seed's condvar behavior. *)
  if num_workers <= Domain.recommended_domain_count () then 4096 else 0

let create ?spin_budget ~num_workers () =
  if num_workers < 1 then invalid_arg "Pool.create: num_workers must be >= 1";
  let spin_budget =
    match spin_budget with
    | Some b -> if b < 0 then 0 else b
    | None -> default_spin_budget ~num_workers
  in
  let pool =
    {
      num_workers;
      spin_budget;
      epoch = Atomic.make 0;
      remaining = Atomic.make 0;
      failure = Atomic.make None;
      stop_flag = Atomic.make false;
      sleepers = Atomic.make 0;
      done_waiters = Atomic.make 0;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      barrier_wait = 0.0;
      domains = [];
    }
  in
  pool.domains <-
    List.init (num_workers - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop pool (i + 1)));
  pool

let num_workers pool = pool.num_workers
let barrier_wait_seconds pool = pool.barrier_wait

(* Observability hook (lib/observe installs the recorder; this module
   cannot depend on it). [None] is the shipped default: the episode path
   below pays no clock read and no call. *)
let episode_hook : (workers:int -> seconds:float -> unit) option ref = ref None
let set_episode_hook h = episode_hook := h

let run_workers_uninstrumented pool f =
  if Atomic.get pool.stop_flag then
    invalid_arg "Pool.run_workers: pool is shut down";
  if pool.num_workers = 1 then run_job f 0
  else begin
    (* Race-mode episode bracketing: a fresh episode id on entry isolates
       this round's plain sets from earlier rounds, and another bump on
       exit keeps post-round sequential writes out of this episode. *)
    if Race.enabled () then Race.next_episode ();
    pool.job <- Some f;
    Atomic.set pool.failure None;
    Atomic.set pool.remaining (pool.num_workers - 1);
    Atomic.incr pool.epoch;
    if Atomic.get pool.sleepers > 0 then begin
      Mutex.lock pool.mutex;
      Condition.broadcast pool.work_ready;
      Mutex.unlock pool.mutex
    end;
    let caller_outcome = try Ok (run_job f 0) with exn -> Error exn in
    Chaos.point ();
    let wait_start = Unix.gettimeofday () in
    let finished =
      spin_until ~budget:pool.spin_budget (fun () ->
          Atomic.get pool.remaining = 0)
    in
    if not finished then begin
      Mutex.lock pool.mutex;
      Atomic.incr pool.done_waiters;
      while Atomic.get pool.remaining > 0 do
        Condition.wait pool.work_done pool.mutex
      done;
      Atomic.decr pool.done_waiters;
      Mutex.unlock pool.mutex
    end;
    pool.barrier_wait <- pool.barrier_wait +. (Unix.gettimeofday () -. wait_start);
    pool.job <- None;
    if Race.enabled () then Race.next_episode ();
    let failure = Atomic.get pool.failure in
    Atomic.set pool.failure None;
    match (caller_outcome, failure) with
    | Error exn, _ -> raise exn
    | Ok (), Some exn -> raise exn
    | Ok (), None -> ()
  end

let run_workers pool f =
  match !episode_hook with
  | None -> run_workers_uninstrumented pool f
  | Some hook -> (
      let start = Unix.gettimeofday () in
      let finish () =
        hook ~workers:pool.num_workers
          ~seconds:(Unix.gettimeofday () -. start)
      in
      match run_workers_uninstrumented pool f with
      | () -> finish ()
      | exception exn ->
          finish ();
          raise exn)

(* ------------------------------------------------------------------ *)
(* Range-granularity scheduling.

   Workers claim [(lo, hi)] chunks instead of single indices, so callers
   run tight local loops with no per-element closure call or shared-counter
   traffic. Three policies, mirroring OpenMP's schedule clause:

   - [Static]: one contiguous block per worker, no shared state at all;
   - [Dynamic]: fixed-size chunks off a shared atomic cursor;
   - [Guided]: exponentially decaying chunks (remaining / 2W, floored at
     [chunk]) — few cursor bumps up front, fine-grained load balancing at
     the tail. *)

(* Per-worker slots are spread [slot_stride] ints apart so the cursor state
   of different workers never shares a cache line. *)
let slot_stride = 8

type range_cursor = {
  r_lo : int;
  r_hi : int;
  r_chunk : int;
  r_align : int;
  r_sched : sched;
  r_workers : int;
  cursor : int Atomic.t; (* Dynamic / Guided *)
  taken : bool array; (* Static: slot tid * slot_stride *)
}

let round_up v align = (v + align - 1) / align * align

let range_cursor pool ?(sched = Dynamic) ?(chunk = 256) ?(align = 1) ~lo ~hi ()
    =
  if chunk < 1 then invalid_arg "Pool.range_cursor: chunk must be >= 1";
  if align < 1 then invalid_arg "Pool.range_cursor: align must be >= 1";
  {
    r_lo = lo;
    r_hi = hi;
    (* Every claim is a multiple of [align], so when [lo] is itself a
       multiple every range boundary (bar the final tail at [hi]) is too —
       the dense-pull kernels use this to start worker chunks on cache-line
       boundaries of the per-vertex arrays. *)
    r_chunk = round_up chunk align;
    r_align = align;
    r_sched = sched;
    r_workers = pool.num_workers;
    cursor = Atomic.make lo;
    taken =
      (match sched with
      | Static -> Array.make (pool.num_workers * slot_stride) false
      | Dynamic | Guided -> [||]);
  }

let next_range c ~tid =
  Chaos.point ();
  match c.r_sched with
  | Static ->
      let slot = tid * slot_stride in
      if c.taken.(slot) then None
      else begin
        c.taken.(slot) <- true;
        let n = c.r_hi - c.r_lo in
        let share = round_up ((n + c.r_workers - 1) / c.r_workers) c.r_align in
        let lo = c.r_lo + (tid * share) in
        let hi = min c.r_hi (lo + share) in
        if lo >= hi then None else Some (lo, hi)
      end
  | Dynamic ->
      let start = Atomic.fetch_and_add c.cursor c.r_chunk in
      if start >= c.r_hi then None
      else Some (start, min c.r_hi (start + c.r_chunk))
  | Guided ->
      let rec claim () =
        let start = Atomic.get c.cursor in
        if start >= c.r_hi then None
        else begin
          let remaining = c.r_hi - start in
          let take =
            min remaining
              (round_up
                 (max c.r_chunk (remaining / (2 * c.r_workers)))
                 c.r_align)
          in
          if Atomic.compare_and_set c.cursor start (start + take) then
            Some (start, start + take)
          else claim ()
        end
      in
      claim ()

let for_ranges name pool sched chunk ~lo ~hi f =
  if chunk < 1 then invalid_arg (name ^ ": chunk must be >= 1");
  if hi > lo then
    if pool.num_workers = 1 || hi - lo <= chunk then f 0 lo hi
    else begin
      let c = range_cursor pool ~sched ~chunk ~lo ~hi () in
      run_workers pool (fun tid ->
          let rec drain () =
            match next_range c ~tid with
            | Some (lo, hi) ->
                f tid lo hi;
                drain ()
            | None -> ()
          in
          drain ())
    end

let parallel_for_ranges pool ?(sched = Dynamic) ?(chunk = 256) ~lo ~hi f =
  for_ranges "Pool.parallel_for_ranges" pool sched chunk ~lo ~hi
    (fun _tid lo hi -> f ~lo ~hi)

let parallel_for_ranges_tid pool ?(sched = Dynamic) ?(chunk = 256) ~lo ~hi f =
  for_ranges "Pool.parallel_for_ranges_tid" pool sched chunk ~lo ~hi
    (fun tid lo hi -> f ~tid ~lo ~hi)

let parallel_for pool ?(sched = Dynamic) ?(chunk = 256) ~lo ~hi f =
  for_ranges "Pool.parallel_for" pool sched chunk ~lo ~hi (fun _tid lo hi ->
      for i = lo to hi - 1 do
        f i
      done)

let parallel_for_tid pool ?(sched = Dynamic) ?(chunk = 256) ~lo ~hi f =
  for_ranges "Pool.parallel_for_tid" pool sched chunk ~lo ~hi (fun tid lo hi ->
      for i = lo to hi - 1 do
        f ~tid i
      done)

let parallel_for_reduce pool ?(sched = Dynamic) ?(chunk = 256) ~lo ~hi ~neutral
    ~combine f =
  if chunk < 1 then invalid_arg "Pool.parallel_for_reduce: chunk must be >= 1";
  if hi <= lo then neutral
  else if pool.num_workers = 1 || hi - lo <= chunk then begin
    let acc = ref neutral in
    for i = lo to hi - 1 do
      acc := combine !acc (f i)
    done;
    !acc
  end
  else begin
    (* Partial results sit [slot_stride] words apart: they are written once
       per worker, but that write must not invalidate a neighbour's line
       mid-loop. *)
    let partials = Array.make (pool.num_workers * slot_stride) neutral in
    let c = range_cursor pool ~sched ~chunk ~lo ~hi () in
    run_workers pool (fun tid ->
        let acc = ref neutral in
        let rec drain () =
          match next_range c ~tid with
          | Some (lo, hi) ->
              for i = lo to hi - 1 do
                acc := combine !acc (f i)
              done;
              drain ()
          | None -> ()
        in
        drain ();
        partials.(tid * slot_stride) <- !acc);
    let total = ref neutral in
    for tid = 0 to pool.num_workers - 1 do
      total := combine !total partials.(tid * slot_stride)
    done;
    !total
  end

let shutdown pool =
  if not (Atomic.get pool.stop_flag) then begin
    Atomic.set pool.stop_flag true;
    Mutex.lock pool.mutex;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.mutex;
    List.iter Domain.join pool.domains;
    pool.domains <- []
  end

let with_pool ?spin_budget ~num_workers f =
  let pool = create ?spin_budget ~num_workers () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
