(* Debug-mode plain-write race detection: shared state between [Pool]
   (which brackets episodes and publishes each worker's tid in
   domain-local storage) and [Atomic_array] (whose [set] consults it to
   maintain per-slot shadow tags). Everything here is off the hot path:
   with the detector disabled the only residue in the runtime is one
   atomic flag read per [Atomic_array.set] and per episode boundary. *)

type finding = {
  array_id : int;
  slot : int;
  first_tid : int;
  second_tid : int;
  episode : int;
}

let enabled_flag = Atomic.make false

(* Episodes are globally monotonic and never reused, so shadow tags
   written under an earlier enable period can never collide with a live
   episode. Starts at 1: shadow slot value 0 means "never written". *)
let episode = Atomic.make 1

(* The tid the current domain is running as. Worker domains only ever
   execute inside [Pool.run_job], which keeps this current; the main
   domain is tid 0 between episodes. *)
let tid_key = Domain.DLS.new_key (fun () -> 0)

let max_findings = 256
let findings_lock = Mutex.create ()
let findings_rev : finding list ref = ref []
let findings_count = Atomic.make 0

let enabled () = Atomic.get enabled_flag

let enable () =
  (* A fresh episode on enable isolates us from any plain writes of the
     preceding disabled period. *)
  Atomic.incr episode;
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

let clear () =
  Mutex.lock findings_lock;
  findings_rev := [];
  Atomic.set findings_count 0;
  Mutex.unlock findings_lock

let findings () =
  Mutex.lock findings_lock;
  let fs = List.rev !findings_rev in
  Mutex.unlock findings_lock;
  fs

let num_findings () = Atomic.get findings_count

let report f =
  if Atomic.fetch_and_add findings_count 1 < max_findings then begin
    Mutex.lock findings_lock;
    findings_rev := f :: !findings_rev;
    Mutex.unlock findings_lock
  end

let current_episode () = Atomic.get episode
let next_episode () = Atomic.incr episode
let current_tid () = Domain.DLS.get tid_key
let set_tid tid = Domain.DLS.set tid_key tid

let pp_finding ppf f =
  Format.fprintf ppf
    "plain-set race: array #%d slot %d written by workers %d and %d in \
     episode %d"
    f.array_id f.slot f.first_tid f.second_tid f.episode
