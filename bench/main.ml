(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 6) on the synthetic workload suite documented in
   DESIGN.md §3. Absolute numbers differ from the paper (different machine,
   different substrate, scaled-down graphs — and this container exposes a
   single core, so like the paper's artifact the default run is serial);
   the *shapes* — who wins, by what factor, where crossovers fall — are the
   reproduction targets, recorded in EXPERIMENTS.md.

   Usage:
     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- --only tab6  -- one experiment
     dune exec bench/main.exe -- --workers 4  -- oversubscribed parallel run
     dune exec bench/main.exe -- --scale big  -- larger graphs
     dune exec bench/main.exe -- --smoke      -- tiny graphs, 1 trial
     dune exec bench/main.exe -- --json f.json -- machine-readable dump
     dune build @bench-smoke                  -- the same, as a dune alias *)

module Pool = Parallel.Pool
module Csr = Graphs.Csr
module Edge_list = Graphs.Edge_list
module Generators = Graphs.Generators
module Coords = Graphs.Coords
module Layout = Graphs.Layout
module Reorder = Graphs.Reorder
module Handle = Graphs.Handle
module Graph_bin = Graphs.Graph_bin
module Graph_io = Graphs.Graph_io
module Delta = Graphs.Delta
module Versioned = Graphs.Versioned
module Rng = Support.Rng
module Timer = Support.Timer
module Schedule = Ordered.Schedule
module Stats = Ordered.Stats
module Json = Support.Json

(* ------------------------------------------------------------------ *)
(* Configuration                                                        *)

let only = ref None
let workers = ref 1
let big = ref false
let smoke = ref false
let trace_out = ref None
let repeats = ref 0 (* 0 = auto: 1 under --smoke, 3 otherwise *)
let bench_layout = ref Layout.Plain
let bench_reorder = ref Reorder.Identity

let parse_or_die what of_string s =
  match of_string s with
  | Ok v -> v
  | Error msg ->
      Printf.eprintf "bad %s %S: %s\n" what s msg;
      exit 2

let usage =
  "GraphIt ordered-extension benchmark suite (methodology: EXPERIMENTS.md)\n\n\
   Usage: bench/main.exe [OPTIONS]\n\n\
   Options:\n\
  \  --only ID        run one section (fig1 tab4 fig4 tab5 tab6 tab7 fig11\n\
  \                   delta traverse graphbin autotune ablate dslperf fig9\n\
  \                   micro runtime service dynamic)\n\
  \  --workers N      worker domains for the engine pools (default 1)\n\
  \  --scale big      larger graphs\n\
  \  --smoke          tiny graphs, one trial per measurement (CI-sized)\n\
  \  --repeats N      trials per measurement (default 3; 1 under --smoke)\n\
  \  --json FILE      write the machine-readable report (bench_diff input)\n\
  \  --trace FILE     record a Perfetto timeline of the whole run\n\
  \  --layout KIND    plain|compressed storage for the engine drivers\n\
  \  --reorder KIND   none|degree|bfs|hilbert vertex relabeling for the suite\n\
  \  --help           show this message\n"

let () =
  let rec parse = function
    | [] -> ()
    | "--help" :: _ ->
        print_string usage;
        exit 0
    | "--only" :: id :: rest ->
        only := Some id;
        parse rest
    | "--workers" :: n :: rest ->
        workers := int_of_string n;
        parse rest
    | "--scale" :: "big" :: rest ->
        big := true;
        parse rest
    | "--smoke" :: rest ->
        (* CI-sized run: tiny graphs, one trial per measurement, trimmed
           search budgets. Checks every section end to end in seconds. *)
        smoke := true;
        parse rest
    | "--json" :: file :: rest ->
        Report.set_path file;
        parse rest
    | "--trace" :: file :: rest ->
        trace_out := Some file;
        parse rest
    | "--repeats" :: n :: rest ->
        repeats := int_of_string n;
        parse rest
    | "--layout" :: kind :: rest ->
        (* Storage substrate for the GraphIt engine drivers: the handles
           handed to the algorithms carry this layout kind. *)
        bench_layout := parse_or_die "--layout" Layout.kind_of_string kind;
        parse rest
    | "--reorder" :: kind :: rest ->
        (* Vertex reordering applied to the whole workload suite before
           any section runs; every framework sees the same relabeled
           graphs, so comparisons stay apples-to-apples. *)
        bench_reorder := parse_or_die "--reorder" Reorder.kind_of_string kind;
        parse rest
    | arg :: rest ->
        Printf.eprintf "ignoring unknown argument %S\n" arg;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv))

let section id title f =
  match !only with
  | Some wanted when wanted <> id -> ()
  | _ ->
      Printf.printf "\n================================================================\n";
      Printf.printf "[%s] %s\n" id title;
      Printf.printf "================================================================\n";
      let (), seconds = Timer.time f in
      Report.add_duration id seconds;
      flush stdout

let effective_repeats () =
  if !repeats > 0 then !repeats else if !smoke then 1 else 3

let time f = Timer.time_median ~repeats:(effective_repeats ()) f
let time_stats f = Timer.time_stats ~repeats:(effective_repeats ()) f

(* ------------------------------------------------------------------ *)
(* Workload suite (DESIGN.md §3: stand-ins for the paper's datasets)    *)

type workload = {
  wname : string;
  paper_analog : string;
  directed : Csr.t;  (* weights [1,1000) for social, geometric for road *)
  wbfs_graph : Csr.t;  (* weights [1, log n) *)
  symmetric : Csr.t;  (* for k-core / SetCover *)
  coords : Coords.t option;
  best_delta : int;
      (* hand-tuned for THIS bench context: the default run is serial (one
         hardware core), where work-efficiency dominates, so road deltas
         are smaller than the paper's 24-core values (see EXPERIMENTS.md) *)
  fusion_delta : int;
      (* the paper's parallel-regime delta (2^13..2^17 for roads), used by
         the Table 6 fusion experiment where round counts are the metric *)
}

let make_social name analog ~scale ~edge_factor ~best_delta ~fusion_delta seed =
  let rng = Rng.create seed in
  let base = Generators.rmat ~rng ~scale ~edge_factor () in
  let weighted = Generators.assign_weights ~rng ~lo:1 ~hi:1000 base in
  let wbfs = Generators.wbfs_weights ~rng base in
  {
    wname = name;
    paper_analog = analog;
    directed = Csr.of_edge_list weighted;
    wbfs_graph = Csr.of_edge_list wbfs;
    symmetric = Csr.of_edge_list (Edge_list.symmetrized weighted);
    coords = None;
    best_delta;
    fusion_delta;
  }

let make_road name analog ~rows ~cols ~best_delta ~fusion_delta seed =
  let rng = Rng.create seed in
  let el, coords = Generators.road_grid ~rng ~rows ~cols () in
  let g = Csr.of_edge_list el in
  {
    wname = name;
    paper_analog = analog;
    directed = g;
    wbfs_graph = g;
    symmetric = g;
    (* road grids are symmetric by construction *)
    coords = Some coords;
    best_delta;
    fusion_delta;
  }

(* --reorder relabels every workload's graphs up front, so each framework
   sees the same permuted vertex ids and comparisons stay apples-to-apples.
   Hilbert falls back (with a warning) on workloads without coordinates. *)
let apply_global_reorder w =
  match !bench_reorder with
  | Reorder.Identity -> w
  | kind -> (
      match Reorder.of_kind kind ~csr:w.directed ~coords:w.coords with
      | Error msg ->
          Printf.eprintf "%s: --reorder %s skipped: %s\n" w.wname
            (Reorder.kind_to_string kind) msg;
          w
      | Ok r ->
          let remap g =
            Csr.of_edge_list (Reorder.apply_edge_list r (Csr.to_edge_list g))
          in
          {
            w with
            directed = remap w.directed;
            wbfs_graph = remap w.wbfs_graph;
            symmetric = remap w.symmetric;
            coords = Option.map (Reorder.apply_coords r) w.coords;
          })

let suite =
  lazy
    (List.map apply_global_reorder
    @@
    if !smoke then
       [
         make_social "social-s" "LiveJournal/Orkut" ~scale:9 ~edge_factor:8
           ~best_delta:4 ~fusion_delta:32 101;
         make_social "social-l" "Twitter/Friendster" ~scale:10 ~edge_factor:8
           ~best_delta:8 ~fusion_delta:32 102;
         make_road "road-s" "Germany/MA" ~rows:24 ~cols:24 ~best_delta:1024
           ~fusion_delta:8192 103;
         make_road "road-l" "RoadUSA" ~rows:36 ~cols:36 ~best_delta:256
           ~fusion_delta:16384 104;
       ]
     else
       let f = if !big then 1 else 0 in
       [
         make_social "social-s" "LiveJournal/Orkut" ~scale:(13 + f) ~edge_factor:12
           ~best_delta:4 ~fusion_delta:32 101;
         make_social "social-l" "Twitter/Friendster" ~scale:(14 + f) ~edge_factor:12
           ~best_delta:8 ~fusion_delta:32 102;
         make_road "road-s" "Germany/MA"
           ~rows:(90 * (f + 1))
           ~cols:(90 * (f + 1))
           ~best_delta:1024 ~fusion_delta:8192 103;
         make_road "road-l" "RoadUSA"
           ~rows:(170 * (f + 1))
           ~cols:(170 * (f + 1))
           ~best_delta:256 ~fusion_delta:16384 104;
       ])

let is_road w = w.coords <> None

let sources w =
  (* Deterministic spread of source vertices, averaged like the paper's 10
     starting vertices (3 keeps the serial bench time sane). *)
  let n = Csr.num_vertices w.directed in
  [ 0; n / 2; (2 * n / 3) + 1 ]

let st_pairs w =
  let n = Csr.num_vertices w.directed in
  [ (0, (n / 2) + 1); (n / 3, (2 * n / 3) + 1); (1, n - 2) ]

let graphit_schedule w = { Schedule.default with delta = w.best_delta }
let pool = lazy (Pool.create ~num_workers:!workers ())
let avg xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* One handle per (workload, graph role): the transpose and compressed
   forms are lazily built once per process and shared by every section,
   instead of rebuilt per run. --layout picks the kind the GraphIt engine
   drivers traverse with. *)
let handle_cache : (string, Handle.t) Hashtbl.t = Hashtbl.create 16

let handle_for role g =
  let key = role ^ "/" ^ Layout.kind_to_string !bench_layout in
  match Hashtbl.find_opt handle_cache key with
  | Some h -> h
  | None ->
      let h = Handle.create ~kind:!bench_layout g in
      Hashtbl.add handle_cache key h;
      h

let dir_handle w = handle_for (w.wname ^ ":dir") w.directed
let wbfs_handle w = handle_for (w.wname ^ ":wbfs") w.wbfs_graph
let sym_handle w = handle_for (w.wname ^ ":sym") w.symmetric

(* ------------------------------------------------------------------ *)
(* Framework drivers: average seconds per (algorithm, workload); nan =
   algorithm not supported by that framework (grey cells of Fig. 4).    *)

let dash = nan

let sssp_time framework w =
  let p = Lazy.force pool in
  let g = w.directed in
  let per_source src =
    match framework with
    | `Graphit ->
        snd
          (time (fun () ->
               Algorithms.Sssp_delta.run ~pool:p ~graph:g
                 ~handle:(dir_handle w) ~schedule:(graphit_schedule w)
                 ~source:src ()))
    | `Gapbs ->
        snd
          (time (fun () ->
               Baselines.Gapbs_like.sssp ~pool:p ~graph:g ~delta:w.best_delta
                 ~source:src ()))
    | `Galois ->
        snd
          (time (fun () ->
               Baselines.Galois_like.sssp ~pool:p ~graph:g ~delta:w.best_delta
                 ~source:src ()))
    | `Julienne ->
        snd
          (time (fun () ->
               Baselines.Julienne_like.sssp ~pool:p ~graph:g ~delta:w.best_delta
                 ~source:src ()))
    | `Unordered ->
        snd
          (time (fun () -> Algorithms.Bellman_ford.run ~pool:p ~graph:g ~source:src ()))
    | `Ligra ->
        let t = Csr.transpose g in
        snd
          (time (fun () ->
               Baselines.Ligra_like.sssp ~pool:p ~graph:g ~transpose:t ~source:src ()))
  in
  avg (List.map per_source (sources w))

let ppsp_time framework w =
  let p = Lazy.force pool in
  let g = w.directed in
  let per_pair (src, dst) =
    match framework with
    | `Graphit ->
        snd
          (time (fun () ->
               Algorithms.Ppsp.run ~pool:p ~graph:g ~handle:(dir_handle w)
                 ~schedule:(graphit_schedule w) ~source:src ~target:dst ()))
    | `Gapbs ->
        snd
          (time (fun () ->
               Baselines.Gapbs_like.ppsp ~pool:p ~graph:g ~delta:w.best_delta
                 ~source:src ~target:dst ()))
    | `Galois ->
        snd
          (time (fun () ->
               ignore
                 (Baselines.Galois_like.ppsp ~pool:p ~graph:g ~delta:w.best_delta
                    ~source:src ~target:dst ())))
    | `Julienne ->
        snd
          (time (fun () ->
               ignore
                 (Baselines.Julienne_like.ppsp ~pool:p ~graph:g ~delta:w.best_delta
                    ~source:src ~target:dst ())))
    | `Unordered ->
        (* Unordered frameworks answer point-to-point queries by running to
           completion (the paper reports the same SSSP time for them). *)
        snd
          (time (fun () -> Algorithms.Bellman_ford.run ~pool:p ~graph:g ~source:src ()))
    | `Ligra ->
        let t = Csr.transpose g in
        snd
          (time (fun () ->
               Baselines.Ligra_like.sssp ~pool:p ~graph:g ~transpose:t ~source:src ()))
  in
  avg (List.map per_pair (st_pairs w))

let wbfs_time framework w =
  if is_road w then dash
    (* the paper benchmarks wBFS only on social networks and web graphs *)
  else begin
    let p = Lazy.force pool in
    let g = w.wbfs_graph in
    let per_source src =
      match framework with
      | `Graphit ->
          snd
            (time (fun () ->
                 Algorithms.Wbfs.run ~pool:p ~graph:g ~handle:(wbfs_handle w)
                   ~schedule:Schedule.default ~source:src ()))
      | `Gapbs ->
          snd
            (time (fun () -> Baselines.Gapbs_like.wbfs ~pool:p ~graph:g ~source:src ()))
      | `Julienne ->
          snd
            (time (fun () ->
                 Baselines.Julienne_like.wbfs ~pool:p ~graph:g ~source:src ()))
      | `Unordered ->
          snd
            (time (fun () ->
                 Algorithms.Bellman_ford.run ~pool:p ~graph:g ~source:src ()))
      | `Ligra ->
          let t = Csr.transpose g in
          snd
            (time (fun () ->
                 Baselines.Ligra_like.sssp ~pool:p ~graph:g ~transpose:t ~source:src ()))
      | `Galois -> dash
    in
    let times = List.map per_source (sources w) in
    let valid = List.filter (fun t -> not (Float.is_nan t)) times in
    if valid = [] then dash else avg valid
  end

let astar_time framework w =
  match w.coords with
  | None -> dash (* A* needs coordinates: road networks only, as in the paper *)
  | Some coords ->
      let p = Lazy.force pool in
      let g = w.directed in
      let per_pair (src, dst) =
        match framework with
        | `Graphit ->
            snd
              (time (fun () ->
                   Algorithms.Astar.run ~pool:p ~graph:g ~handle:(dir_handle w)
                     ~coords ~schedule:(graphit_schedule w) ~source:src
                     ~target:dst ()))
        | `Gapbs ->
            snd
              (time (fun () ->
                   Baselines.Gapbs_like.astar ~pool:p ~graph:g ~coords
                     ~delta:w.best_delta ~source:src ~target:dst ()))
        | `Galois ->
            snd
              (time (fun () ->
                   ignore
                     (Baselines.Galois_like.astar ~pool:p ~graph:g ~coords
                        ~delta:w.best_delta ~source:src ~target:dst ())))
        | `Unordered ->
            snd
              (time (fun () ->
                   Algorithms.Bellman_ford.run ~pool:p ~graph:g ~source:src ()))
        | `Julienne | `Ligra -> dash
      in
      let times =
        List.filter (fun t -> not (Float.is_nan t)) (List.map per_pair (st_pairs w))
      in
      if times = [] then dash else avg times

let kcore_time framework w =
  let p = Lazy.force pool in
  let g = w.symmetric in
  match framework with
  | `Graphit ->
      snd
        (time (fun () ->
             Algorithms.Kcore.run ~pool:p ~graph:g ~handle:(sym_handle w)
               ~schedule:{ Schedule.default with strategy = Schedule.Lazy_constant_sum }
               ()))
  | `Julienne -> snd (time (fun () -> Baselines.Julienne_like.kcore ~pool:p ~graph:g ()))
  | `Unordered | `Ligra ->
      snd (time (fun () -> Algorithms.Kcore_unordered.run ~pool:p ~graph:g ()))
  | `Gapbs | `Galois -> dash

let setcover_time framework w =
  let p = Lazy.force pool in
  let g = w.symmetric in
  match framework with
  | `Graphit ->
      snd
        (time (fun () ->
             Algorithms.Setcover.run ~pool:p ~graph:g ~handle:(sym_handle w)
               ~schedule:{ Schedule.default with strategy = Schedule.Lazy }
               ()))
  | `Julienne ->
      snd (time (fun () -> Baselines.Julienne_like.setcover ~pool:p ~graph:g ()))
  | `Gapbs | `Galois | `Unordered | `Ligra -> dash

(* ------------------------------------------------------------------ *)
(* Experiments                                                          *)

let fig1 () =
  Printf.printf
    "Speedup of ordered algorithms over their unordered counterparts\n\
     (paper Figure 1: largest on large-diameter road networks).\n\n";
  Printf.printf "%-11s %-22s %12s %12s %9s\n" "graph" "(analog)" "ordered(s)"
    "unordered(s)" "speedup";
  let run alg driver =
    List.iter
      (fun w ->
        let ordered = driver `Graphit w in
        let unordered = driver `Unordered w in
        Printf.printf "%-5s %-5s %-22s %12.3f %12.3f %8.1fx\n" alg w.wname
          ("(" ^ w.paper_analog ^ ")")
          ordered unordered (unordered /. ordered);
        Report.row "fig1"
          [
            ("algorithm", Json.String alg);
            ("graph", Json.String w.wname);
            ("ordered_seconds", Json.Float ordered);
            ("unordered_seconds", Json.Float unordered);
            ("speedup", Json.Float (unordered /. ordered));
          ])
      (Lazy.force suite)
  in
  run "SSSP" sssp_time;
  run "kcore" kcore_time

let collect_tab4 () =
  let algorithms =
    [
      ("SSSP", sssp_time);
      ("PPSP", ppsp_time);
      ("wBFS", wbfs_time);
      ("A*", astar_time);
      ("k-core", kcore_time);
      ("SetCover", setcover_time);
    ]
  in
  let frameworks =
    [
      ("GraphIt(ordered)", `Graphit);
      ("GAPBS", `Gapbs);
      ("Galois", `Galois);
      ("Julienne", `Julienne);
      ("GraphIt(unordered)", `Unordered);
      ("Ligra(unordered)", `Ligra);
    ]
  in
  List.map
    (fun (alg_name, driver) ->
      ( alg_name,
        List.map
          (fun w ->
            (w.wname, List.map (fun (fw_name, fw) -> (fw_name, driver fw w)) frameworks))
          (Lazy.force suite) ))
    algorithms

let tab4_cache = ref None

let tab4_data () =
  match !tab4_cache with
  | Some d -> d
  | None ->
      let d = collect_tab4 () in
      tab4_cache := Some d;
      d

let tab4 () =
  Printf.printf
    "Running time (s) of GraphIt-with-extension vs comparison frameworks\n\
     (paper Table 4). Social graphs: weights [1,1000); wBFS: [1, log n);\n\
     roads: geometric weights. Averaged over %d sources/pairs.\n"
    (List.length (sources (List.hd (Lazy.force suite))));
  List.iter
    (fun (alg_name, per_graph) ->
      Printf.printf "\n--- %s (seconds; * = fastest; - = not supported) ---\n" alg_name;
      let frameworks = List.map fst (snd (List.hd per_graph)) in
      Printf.printf "%-22s" "framework";
      List.iter (fun (g, _) -> Printf.printf " %9s" g) per_graph;
      print_newline ();
      List.iter
        (fun fw ->
          Printf.printf "%-22s" fw;
          List.iter
            (fun (_, cells) ->
              let t = List.assoc fw cells in
              let best =
                List.fold_left
                  (fun acc (_, x) -> if Float.is_nan x then acc else min acc x)
                  infinity cells
              in
              if Float.is_nan t then Printf.printf " %9s" "-"
              else Printf.printf " %8.3f%s" t (if t = best then "*" else " "))
            per_graph;
          print_newline ())
        frameworks)
    (tab4_data ());
  List.iter
    (fun (alg_name, per_graph) ->
      List.iter
        (fun (graph, cells) ->
          List.iter
            (fun (fw, t) ->
              Report.row "tab4"
                [
                  ("algorithm", Json.String alg_name);
                  ("graph", Json.String graph);
                  ("framework", Json.String fw);
                  (* nan (unsupported combination) serializes as null *)
                  ("seconds", Json.Float t);
                ])
            cells)
        per_graph)
    (tab4_data ())

let fig4 () =
  Printf.printf
    "Slowdown relative to the fastest ordered framework per cell (paper\n\
     Figure 4; 1.00 marks the fastest, '-' an unsupported algorithm).\n";
  let interesting = [ "SSSP"; "PPSP"; "k-core"; "SetCover" ] in
  let ordered_frameworks = [ "GraphIt(ordered)"; "Julienne"; "Galois" ] in
  List.iter
    (fun (alg_name, per_graph) ->
      if List.mem alg_name interesting then begin
        Printf.printf "\n--- %s ---\n" alg_name;
        Printf.printf "%-22s" "framework";
        List.iter (fun (g, _) -> Printf.printf " %9s" g) per_graph;
        print_newline ();
        List.iter
          (fun fw ->
            Printf.printf "%-22s" fw;
            List.iter
              (fun (_, cells) ->
                let best =
                  List.fold_left
                    (fun acc (name, t) ->
                      if List.mem name ordered_frameworks && not (Float.is_nan t) then
                        min acc t
                      else acc)
                    infinity cells
                in
                let t = List.assoc fw cells in
                if Float.is_nan t then Printf.printf " %9s" "-"
                else Printf.printf " %9.2f" (t /. best))
              per_graph;
            print_newline ())
          ordered_frameworks
      end)
    (tab4_data ())

let tab5 () =
  Printf.printf
    "Lines of code (paper Table 5): DSL programs vs the hand-written\n\
     implementations a framework user would maintain. DSL lines exclude\n\
     comments, blanks, and the schedule section; OCaml counts cover the\n\
     algorithm modules (.ml, comments and blanks excluded).\n\n";
  let count_lines ?(strip_schedule = false) path =
    let ic = open_in path in
    let count = ref 0 in
    let in_schedule = ref false in
    let in_comment = ref false in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if strip_schedule && line = "schedule:" then in_schedule := true;
         let starts p = String.length line >= String.length p
                        && String.sub line 0 (String.length p) = p in
         if starts "(*" then in_comment := true;
         let is_comment =
           !in_comment || starts "%" || starts "//"
         in
         if String.length line >= 2 && String.sub line (String.length line - 2) 2 = "*)"
         then in_comment := false;
         if line <> "" && (not !in_schedule) && not is_comment then incr count
       done
     with End_of_file -> close_in ic);
    !count
  in
  let find candidates = List.find_opt Sys.file_exists candidates in
  let app name = find [ "examples/apps/" ^ name; "../examples/apps/" ^ name ] in
  let lib path = find [ "lib/" ^ path; "../lib/" ^ path ] in
  let rows =
    [
      ("SSSP", "sssp.gt", [ "algorithms/sssp_delta.ml" ]);
      ("PPSP", "ppsp.gt", [ "algorithms/ppsp.ml" ]);
      ("wBFS", "wbfs.gt", [ "algorithms/wbfs.ml"; "algorithms/sssp_delta.ml" ]);
      ("A*", "astar.gt", [ "algorithms/astar.ml" ]);
      ("k-core", "kcore.gt", [ "algorithms/kcore.ml" ]);
      ("SetCover", "setcover.gt", [ "algorithms/setcover.ml" ]);
    ]
  in
  Printf.printf "%-10s %18s %26s %8s\n" "algorithm" "GraphIt DSL (loc)"
    "hand-written OCaml (loc)" "ratio";
  List.iter
    (fun (name, gt, ml_files) ->
      match app gt with
      | None -> Printf.printf "%-10s (run from the repository root)\n" name
      | Some gt_path ->
          let dsl = count_lines ~strip_schedule:true gt_path in
          let ml =
            List.fold_left
              (fun acc f -> match lib f with Some p -> acc + count_lines p | None -> acc)
              0 ml_files
          in
          Printf.printf "%-10s %18d %26d %7.1fx\n" name dsl ml
            (float_of_int ml /. float_of_int (max 1 dsl));
          Report.row "tab5"
            [
              ("algorithm", Json.String name);
              ("dsl_loc", Json.Int dsl);
              ("ocaml_loc", Json.Int ml);
            ])
    rows

let tab6 () =
  Printf.printf
    "Bucket fusion: running time and global rounds with vs without fusion\n\
     (paper Table 6: >30x round reduction on RoadUSA, 1.2-3x speedup).\n\n";
  let p = Lazy.force pool in
  Printf.printf "%-10s %-20s %24s %25s %8s %18s\n" "graph" "(analog)" "with fusion"
    "without fusion" "rounds" "sync/round (us)";
  List.iter
    (fun w ->
      (* Table 6 runs in the paper's parallel-regime delta, where many
         consecutive rounds process the same bucket. *)
      let sched = { Schedule.default with delta = w.fusion_delta } in
      let fused, fused_s =
        time (fun () ->
            Algorithms.Sssp_delta.run ~pool:p ~graph:w.directed ~schedule:sched
              ~source:0 ())
      in
      let unfused, unfused_s =
        time (fun () ->
            Algorithms.Sssp_delta.run ~pool:p ~graph:w.directed
              ~schedule:{ sched with strategy = Schedule.Eager_no_fusion }
              ~source:0 ())
      in
      assert (fused.Algorithms.Sssp_delta.dist = unfused.Algorithms.Sssp_delta.dist);
      (* The per-round barrier cost is the quantity fusion amortizes; a
         1-worker pool has no barrier, so the column renders as '-' there
         rather than a misleading 0. *)
      let sync_per_round r =
        if !workers <= 1 then "-"
        else
          Printf.sprintf "%.2f"
            (1e6 *. r.Algorithms.Sssp_delta.stats.Stats.sync_seconds
            /. float_of_int (max 1 r.Algorithms.Sssp_delta.stats.Stats.rounds))
      in
      Printf.printf
        "%-10s %-20s %9.3fs [%6d rds] %9.3fs [%7d rds] %7.1fx %8s /%8s\n"
        w.wname
        ("(" ^ w.paper_analog ^ ")")
        fused_s fused.stats.Stats.rounds unfused_s unfused.stats.Stats.rounds
        (float_of_int unfused.stats.Stats.rounds
        /. float_of_int (max 1 fused.stats.Stats.rounds))
        (sync_per_round fused) (sync_per_round unfused);
      let variant name seconds (r : Algorithms.Sssp_delta.result) =
        ( name,
          Json.Obj
            [ ("seconds", Json.Float seconds); ("stats", Stats.to_json r.stats) ] )
      in
      Report.row "tab6"
        [
          ("graph", Json.String w.wname);
          ("delta", Json.Int w.fusion_delta);
          variant "with_fusion" fused_s fused;
          variant "without_fusion" unfused_s unfused;
          ( "round_reduction",
            Json.Float
              (float_of_int unfused.stats.Stats.rounds
              /. float_of_int (max 1 fused.stats.Stats.rounds)) );
        ])
    (Lazy.force suite)

let tab7 () =
  Printf.printf
    "Eager vs lazy bucket updates (paper Table 7): k-core is faster lazy\n\
     (with the constant-sum histogram), SSSP is faster eager (the lazy\n\
     buffering is pure overhead when there are few redundant updates).\n\n";
  let p = Lazy.force pool in
  Printf.printf "%-10s | %-31s | %-31s\n" "" "k-core (s)" "SSSP (s)";
  Printf.printf "%-10s | %13s %17s | %13s %17s\n" "graph" "eager" "lazy(+histogram)"
    "eager" "lazy";
  List.iter
    (fun w ->
      let kcore_eager =
        snd
          (time (fun () ->
               Algorithms.Kcore.run ~pool:p ~graph:w.symmetric
                 ~schedule:Schedule.default ()))
      in
      let kcore_lazy =
        snd
          (time (fun () ->
               Algorithms.Kcore.run ~pool:p ~graph:w.symmetric
                 ~schedule:
                   { Schedule.default with strategy = Schedule.Lazy_constant_sum }
                 ()))
      in
      let sched = graphit_schedule w in
      let sssp_eager =
        snd
          (time (fun () ->
               Algorithms.Sssp_delta.run ~pool:p ~graph:w.directed ~schedule:sched
                 ~source:0 ()))
      in
      let sssp_lazy =
        snd
          (time (fun () ->
               Algorithms.Sssp_delta.run ~pool:p ~graph:w.directed
                 ~schedule:{ sched with strategy = Schedule.Lazy }
                 ~source:0 ()))
      in
      Printf.printf "%-10s | %13.3f %17.3f | %13.3f %17.3f\n" w.wname kcore_eager
        kcore_lazy sssp_eager sssp_lazy;
      Report.row "tab7"
        [
          ("graph", Json.String w.wname);
          ("kcore_eager_seconds", Json.Float kcore_eager);
          ("kcore_lazy_seconds", Json.Float kcore_lazy);
          ("sssp_eager_seconds", Json.Float sssp_eager);
          ("sssp_lazy_seconds", Json.Float sssp_lazy);
        ])
    (Lazy.force suite)

let fig11 () =
  Printf.printf
    "SSSP scalability (paper Figure 11). NOTE: this container exposes %d\n\
     hardware core(s); extra workers timeshare it, so wall-clock speedup\n\
     cannot exceed 1x here. The hardware-independent columns (rounds, edge\n\
     relaxations) show the decomposition is real: work stays ~constant as\n\
     workers are added.\n\n"
    (Domain.recommended_domain_count ());
  let worker_counts = [ 1; 2; 4 ] in
  let graphs =
    List.filter (fun w -> w.wname = "social-l" || w.wname = "road-l") (Lazy.force suite)
  in
  List.iter
    (fun w ->
      Printf.printf "--- %s (analog %s) ---\n" w.wname w.paper_analog;
      Printf.printf "%-10s %8s %10s %10s %12s\n" "framework" "workers" "time(s)"
        "rounds" "edges";
      List.iter
        (fun nw ->
          Pool.with_pool ~num_workers:nw (fun p ->
              let graphit, gs =
                time (fun () ->
                    Algorithms.Sssp_delta.run ~pool:p ~graph:w.directed
                      ~schedule:(graphit_schedule w) ~source:0 ())
              in
              let fig11_row fw seconds rounds edges =
                Report.row "fig11"
                  [
                    ("graph", Json.String w.wname);
                    ("framework", Json.String fw);
                    ("workers", Json.Int nw);
                    ("seconds", Json.Float seconds);
                    ("rounds", Json.Int rounds);
                    ( "edges_relaxed",
                      match edges with Some e -> Json.Int e | None -> Json.Null );
                  ]
              in
              Printf.printf "%-10s %8d %10.3f %10d %12d\n" "graphit" nw gs
                graphit.stats.Stats.rounds graphit.stats.Stats.edges_relaxed;
              fig11_row "graphit" gs graphit.stats.Stats.rounds
                (Some graphit.stats.Stats.edges_relaxed);
              let gapbs, bs =
                time (fun () ->
                    Baselines.Gapbs_like.sssp ~pool:p ~graph:w.directed
                      ~delta:w.best_delta ~source:0 ())
              in
              Printf.printf "%-10s %8d %10.3f %10d %12d\n" "gapbs" nw bs
                gapbs.Algorithms.Sssp_delta.stats.Stats.rounds
                gapbs.Algorithms.Sssp_delta.stats.Stats.edges_relaxed;
              fig11_row "gapbs" bs gapbs.Algorithms.Sssp_delta.stats.Stats.rounds
                (Some gapbs.Algorithms.Sssp_delta.stats.Stats.edges_relaxed);
              let julienne, js =
                time (fun () ->
                    Baselines.Julienne_like.sssp ~pool:p ~graph:w.directed
                      ~delta:w.best_delta ~source:0 ())
              in
              Printf.printf "%-10s %8d %10.3f %10d %12s\n" "julienne" nw js
                julienne.Baselines.Julienne_like.rounds "-";
              fig11_row "julienne" js julienne.Baselines.Julienne_like.rounds
                None))
        worker_counts;
      print_newline ())
    graphs

let delta_sweep () =
  Printf.printf
    "Δ selection (paper §6.2): social networks want small Δ (work-efficiency\n\
     dominates), road networks want large Δ (rounds/synchronization\n\
     dominate). Seconds per Δ; * marks each graph's best.\n\n";
  let p = Lazy.force pool in
  let deltas = [ 1; 4; 16; 64; 256; 1024; 4096; 16384; 65536 ] in
  Printf.printf "%-10s" "graph";
  List.iter (fun d -> Printf.printf " %8d" d) deltas;
  Printf.printf "     best\n";
  List.iter
    (fun w ->
      let results =
        List.map
          (fun delta ->
            let _, s =
              time (fun () ->
                  Algorithms.Sssp_delta.run ~pool:p ~graph:w.directed
                    ~schedule:{ Schedule.default with delta }
                    ~source:0 ())
            in
            (delta, s))
          deltas
      in
      let best_delta, _ =
        List.fold_left
          (fun (bd, bs) (d, s) -> if s < bs then (d, s) else (bd, bs))
          (0, infinity) results
      in
      Printf.printf "%-10s" w.wname;
      List.iter
        (fun (d, s) -> Printf.printf " %7.3f%s" s (if d = best_delta then "*" else " "))
        results;
      Printf.printf " %8d\n" best_delta;
      Report.row "delta"
        [
          ("graph", Json.String w.wname);
          ("best_delta", Json.Int best_delta);
          ( "sweep",
            Json.List
              (List.map
                 (fun (d, s) ->
                   Json.Obj [ ("delta", Json.Int d); ("seconds", Json.Float s) ])
                 results) );
        ])
    (Lazy.force suite)

let traverse_bench () =
  Printf.printf
    "Traversal core (lib/traverse): the same lazy wBFS forced through each\n\
     edge-map direction. Push pays atomics on sparse frontiers, Pull sweeps\n\
     the transpose without them, Hybrid picks per round via the degree-sum\n\
     heuristic (pull_rounds counts its dense choices).\n\n";
  let p = Lazy.force pool in
  Printf.printf "%-10s %-10s %10s %8s %12s\n" "graph" "direction" "seconds"
    "rounds" "pull_rounds";
  List.iter
    (fun w ->
      let transpose = Csr.transpose w.directed in
      List.iter
        (fun traversal ->
          let schedule =
            { Schedule.default with strategy = Schedule.Lazy; traversal;
              delta = w.best_delta }
          in
          let r, seconds =
            time (fun () ->
                Algorithms.Sssp_delta.run ~pool:p ~graph:w.directed ~transpose
                  ~schedule ~source:0 ())
          in
          let label = Schedule.traversal_to_string traversal in
          Printf.printf "%-10s %-10s %10.4f %8d %12d\n" w.wname label seconds
            r.Algorithms.Sssp_delta.stats.Stats.rounds
            r.Algorithms.Sssp_delta.stats.Stats.pull_rounds;
          Report.row "traverse"
            [
              ("graph", Json.String w.wname);
              ("direction", Json.String label);
              ("seconds", Json.Float seconds);
              ("rounds", Json.Int r.Algorithms.Sssp_delta.stats.Stats.rounds);
              ( "pull_rounds",
                Json.Int r.Algorithms.Sssp_delta.stats.Stats.pull_rounds );
            ])
        [ Schedule.Sparse_push; Schedule.Dense_pull; Schedule.Hybrid ])
    (List.filter
       (fun w -> w.wname = "social-l" || w.wname = "road-l")
       (Lazy.force suite));
  (* Storage substrate axis: the same lazy-hybrid run per layout x
     reordering. Compressed trades per-edge varint decode for a smaller
     working set; reorderings pay off where they tighten destination
     locality (hub-first on power-law graphs, Hilbert on road grids). *)
  Printf.printf
    "\nLayout x reordering (lazy hybrid SSSP; median/min/max of %d runs):\n\n"
    (effective_repeats ());
  Printf.printf "%-10s %-12s %-8s %10s %10s %10s %7s\n" "graph" "layout"
    "reorder" "median_s" "min_s" "max_s" "rounds";
  List.iter
    (fun w ->
      let reorder_kinds =
        [ Reorder.Identity; Reorder.Degree ]
        @ (if is_road w then [ Reorder.Hilbert ] else [])
      in
      List.iter
        (fun rk ->
          match Reorder.of_kind rk ~csr:w.directed ~coords:w.coords with
          | Error msg ->
              Printf.eprintf "%s: reorder %s skipped: %s\n" w.wname
                (Reorder.kind_to_string rk) msg
          | Ok r ->
              let csr =
                if rk = Reorder.Identity then w.directed
                else
                  Csr.of_edge_list
                    (Reorder.apply_edge_list r (Csr.to_edge_list w.directed))
              in
              let source = Reorder.apply_vertex r 0 in
              let schedule =
                { Schedule.default with strategy = Schedule.Lazy;
                  traversal = Schedule.Hybrid; delta = w.best_delta }
              in
              List.iter
                (fun kind ->
                  let handle = Handle.create ~kind csr in
                  let res, st =
                    time_stats (fun () ->
                        Algorithms.Sssp_delta.run ~pool:p ~graph:csr ~handle
                          ~schedule ~source ())
                  in
                  let layout_s = Layout.kind_to_string kind in
                  let reorder_s = Reorder.kind_to_string rk in
                  Printf.printf "%-10s %-12s %-8s %10.4f %10.4f %10.4f %7d\n"
                    w.wname layout_s reorder_s st.Timer.median st.Timer.min
                    st.Timer.max res.Algorithms.Sssp_delta.stats.Stats.rounds;
                  Report.row "traverse"
                    [
                      ("graph", Json.String w.wname);
                      ("direction", Json.String "hybrid");
                      ("layout", Json.String layout_s);
                      ("reorder", Json.String reorder_s);
                      ("seconds", Json.Float st.Timer.median);
                      ("min_seconds", Json.Float st.Timer.min);
                      ("max_seconds", Json.Float st.Timer.max);
                      ( "rounds",
                        Json.Int res.Algorithms.Sssp_delta.stats.Stats.rounds );
                      ( "pull_rounds",
                        Json.Int
                          res.Algorithms.Sssp_delta.stats.Stats.pull_rounds );
                    ])
                [ Layout.Plain; Layout.Compressed ])
        reorder_kinds)
    (List.filter
       (fun w -> w.wname = "social-l" || w.wname = "road-l")
       (Lazy.force suite));
  print_newline ()

let graphbin_bench () =
  Printf.printf
    "Binary graph format (GRAPHBIN): mmap-backed load vs text edge-list\n\
     parsing, on the largest workload of the suite. The binary path maps\n\
     the payload and copies flat words; the text path tokenizes and\n\
     allocates per edge.\n\n";
  let w =
    List.fold_left
      (fun best c ->
        if Csr.num_edges c.directed > Csr.num_edges best.directed then c
        else best)
      (List.hd (Lazy.force suite))
      (Lazy.force suite)
  in
  let el = Csr.to_edge_list w.directed in
  let txt = Filename.temp_file "bench_graph" ".el" in
  let bin = Filename.temp_file "bench_graph" ".bin" in
  let bin_c = Filename.temp_file "bench_graph_c" ".bin" in
  Fun.protect
    ~finally:(fun () -> List.iter Sys.remove [ txt; bin; bin_c ])
  @@ fun () ->
  Graph_io.write_edge_list txt el;
  Graph_bin.save bin w.directed;
  Graph_bin.save bin_c ~layout:Layout.Compressed w.directed;
  let file_kb path = (Unix.stat path).Unix.st_size / 1024 in
  Printf.printf "%s: |V|=%d |E|=%d  text=%dKiB bin=%dKiB bin.z=%dKiB\n\n"
    w.wname (Csr.num_vertices w.directed) (Csr.num_edges w.directed)
    (file_kb txt) (file_kb bin) (file_kb bin_c);
  let bench label path load =
    let g, st = time_stats (fun () -> load path) in
    assert (Csr.num_edges g = Csr.num_edges w.directed);
    Printf.printf "%-14s %10.4f s (min %.4f, max %.4f)\n" label
      st.Timer.median st.Timer.min st.Timer.max;
    Report.row "graphbin"
      [
        ("format", Json.String label);
        ("file_kb", Json.Int (file_kb path));
        ("seconds", Json.Float st.Timer.median);
        ("min_seconds", Json.Float st.Timer.min);
        ("max_seconds", Json.Float st.Timer.max);
      ];
    st.Timer.median
  in
  let text_s =
    bench "text" txt (fun p -> Csr.of_edge_list (Graph_io.load p))
  in
  let bin_s = bench "bin-plain" bin Graph_bin.load_csr in
  let binc_s = bench "bin-compressed" bin_c Graph_bin.load_csr in
  Printf.printf "\nspeedup over text parse: plain %.1fx, compressed %.1fx\n"
    (text_s /. bin_s) (text_s /. binc_s);
  Report.row "graphbin"
    [
      ("format", Json.String "speedup");
      ("plain_speedup", Json.Float (text_s /. bin_s));
      ("compressed_speedup", Json.Float (text_s /. binc_s));
    ]

let autotune_bench () =
  Printf.printf
    "Autotuning (paper §5.3/§6.2: schedules within ~5%% of hand-tuned found\n\
     after tens of trials in a large space).\n\n";
  let p = Lazy.force pool in
  let space =
    { Autotune.Search_space.default with Autotune.Search_space.allow_dense_pull = false }
  in
  Printf.printf "discrete search-space size: %d schedule points\n\n"
    (Autotune.Search_space.size space);
  List.iter
    (fun w ->
      let evaluate schedule =
        snd
          (Timer.time (fun () ->
               Algorithms.Sssp_delta.run ~pool:p ~graph:w.directed ~schedule ~source:0 ()))
      in
      let hand = evaluate (graphit_schedule w) in
      let rng = Rng.create 2020 in
      let budget = if !smoke then 8 else 40 in
      let result = Autotune.Tuner.tune ~space ~rng ~budget ~evaluate () in
      let best = result.Autotune.Tuner.best in
      Printf.printf
        "%-10s hand-tuned %.4fs | autotuned %.4fs in %2d trials (%s, delta=%d) => %+.0f%%\n"
        w.wname hand best.Autotune.Tuner.seconds
        (List.length result.Autotune.Tuner.trials)
        (Schedule.strategy_to_string best.Autotune.Tuner.schedule.Schedule.strategy)
        best.Autotune.Tuner.schedule.Schedule.delta
        (100.0 *. ((best.Autotune.Tuner.seconds -. hand) /. hand));
      Report.row "autotune"
        [
          ("graph", Json.String w.wname);
          ("hand_tuned_seconds", Json.Float hand);
          ("autotuned_seconds", Json.Float best.Autotune.Tuner.seconds);
          ("trials", Json.Int (List.length result.Autotune.Tuner.trials));
          ( "strategy",
            Json.String
              (Schedule.strategy_to_string
                 best.Autotune.Tuner.schedule.Schedule.strategy) );
          ("delta", Json.Int best.Autotune.Tuner.schedule.Schedule.delta);
        ])
    (Lazy.force suite)

let ablation () =
  Printf.printf
    "Ablations of the scheduling knobs the paper exposes (Table 2) beyond\n\
     strategy and delta: the bucket-fusion threshold and the number of\n\
     materialized lazy buckets.\n\n";
  let p = Lazy.force pool in
  let road = List.find (fun w -> w.wname = "road-l") (Lazy.force suite) in
  let social = List.find (fun w -> w.wname = "social-l") (Lazy.force suite) in
  Printf.printf "--- configBucketFusionThreshold (SSSP on %s, delta=%d) ---\n"
    road.wname road.fusion_delta;
  Printf.printf "%-10s %10s %10s %12s\n" "threshold" "time(s)" "rounds" "fused drains";
  List.iter
    (fun fusion_threshold ->
      let r, seconds =
        time (fun () ->
            Algorithms.Sssp_delta.run ~pool:p ~graph:road.directed
              ~schedule:
                { Schedule.default with delta = road.fusion_delta; fusion_threshold }
              ~source:0 ())
      in
      Printf.printf "%-10d %10.3f %10d %12d\n" fusion_threshold seconds
        r.stats.Stats.rounds r.stats.Stats.fused_drains;
      Report.row "ablate"
        [
          ("knob", Json.String "fusion_threshold");
          ("graph", Json.String road.wname);
          ("value", Json.Int fusion_threshold);
          ("seconds", Json.Float seconds);
          ("rounds", Json.Int r.stats.Stats.rounds);
          ("fused_drains", Json.Int r.stats.Stats.fused_drains);
        ])
    [ 1; 10; 100; 1000; 10000 ];
  Printf.printf
    "\n--- configNumBuckets (k-core lazy_constant_sum on %s) ---\n" social.wname;
  Printf.printf "%-12s %10s\n" "num_buckets" "time(s)";
  List.iter
    (fun num_open_buckets ->
      let _, seconds =
        time (fun () ->
            Algorithms.Kcore.run ~pool:p ~graph:social.symmetric
              ~schedule:
                {
                  Schedule.default with
                  strategy = Schedule.Lazy_constant_sum;
                  num_open_buckets;
                }
              ())
      in
      Printf.printf "%-12d %10.3f\n" num_open_buckets seconds;
      Report.row "ablate"
        [
          ("knob", Json.String "num_open_buckets");
          ("graph", Json.String social.wname);
          ("value", Json.Int num_open_buckets);
          ("seconds", Json.Float seconds);
        ])
    [ 2; 8; 32; 128; 512; 2048 ];
  Printf.printf
    "\n--- widest path (Higher_first + updatePriorityMax), delta sweep on %s ---\n"
    road.wname;
  Printf.printf "%-10s %10s %10s\n" "delta" "time(s)" "rounds";
  List.iter
    (fun delta ->
      let r, seconds =
        time (fun () ->
            Algorithms.Widest_path.run ~pool:p ~graph:road.directed
              ~schedule:{ Schedule.default with delta }
              ~source:0 ())
      in
      Printf.printf "%-10d %10.3f %10d\n" delta seconds r.stats.Stats.rounds;
      Report.row "ablate"
        [
          ("knob", Json.String "widest_path_delta");
          ("graph", Json.String road.wname);
          ("value", Json.Int delta);
          ("seconds", Json.Float seconds);
          ("rounds", Json.Int r.stats.Stats.rounds);
        ])
    [ 1; 8; 64; 512 ]

let fig9 () =
  Printf.printf
    "Generated C++ for Δ-stepping under different schedules (paper Fig. 9;\n\
     the structural differences are also pinned by the codegen test suite).\n";
  match
    List.find_opt Sys.file_exists [ "examples/apps/sssp.gt"; "../examples/apps/sssp.gt" ]
  with
  | None -> Printf.printf "(run from the repository root to locate sssp.gt)\n"
  | Some path ->
      let source =
        let ic = open_in path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      List.iter
        (fun (label, replacement) ->
          let src =
            Str.global_replace
              (Str.regexp_string "\"eager_with_fusion\"")
              replacement source
          in
          match Dsl.Lower.lower_string src with
          | Error msg -> Printf.printf "error: %s\n" msg
          | Ok lowered ->
              Printf.printf "\n----- schedule: %s -----\n%s" label
                (Dsl.Codegen_cpp.generate lowered))
        [
          ("lazy + SparsePush (Fig. 9a)", "\"lazy\"");
          ("eager, no fusion (Fig. 9c)", "\"eager_no_fusion\"");
          ("eager with bucket fusion (Fig. 7)", "\"eager_with_fusion\"");
        ]

let dsl_overhead () =
  Printf.printf
    "DSL execution overhead: the same algorithm as a compiled .gt program\n\
     (user function interpreted per edge) vs the native OCaml API (closure\n\
     compiled by ocamlopt). The paper's compiler closes this gap by emitting\n\
     C++; our interpreter pays it, which is why Table 4 times native code.\n\n";
  let p = Lazy.force pool in
  let app =
    List.find_opt Sys.file_exists
      [ "examples/apps/sssp.gt"; "../examples/apps/sssp.gt" ]
  in
  match app with
  | None -> Printf.printf "(run from the repository root to locate sssp.gt)\n"
  | Some path -> (
      match Dsl.Frontend.compile_file path with
      | Error msg -> Printf.printf "compile error: %s\n" msg
      | Ok compiled ->
          Printf.printf "%-10s %12s %12s %12s %10s\n" "graph" "native(s)"
            "dsl+load(s)" "dsl exec(s)" "overhead";
          List.iter
            (fun w ->
              let graph_path = Filename.temp_file "bench_dsl" ".el" in
              Graphs.Graph_io.write_edge_list graph_path (Csr.to_edge_list w.directed);
              Fun.protect
                ~finally:(fun () -> Sys.remove graph_path)
                (fun () ->
                  let _, native =
                    time (fun () ->
                        Algorithms.Sssp_delta.run ~pool:p ~graph:w.directed
                          ~schedule:(graphit_schedule w) ~source:0 ())
                  in
                  let _, dsl =
                    time (fun () ->
                        Dsl.Frontend.run compiled ~pool:p
                          ~argv:[| "sssp"; graph_path; "0" |] ())
                  in
                  (* The DSL run loads the graph itself; measure that part
                     so the interpretive overhead is isolated. *)
                  let _, load =
                    time (fun () ->
                        Csr.of_edge_list (Graphs.Graph_io.load graph_path))
                  in
                  let dsl_exec = Float.max 0.0 (dsl -. load) in
                  Printf.printf "%-10s %12.3f %12.3f %12.3f %9.1fx\n" w.wname native
                    dsl dsl_exec (dsl_exec /. native);
                  Report.row "dslperf"
                    [
                      ("graph", Json.String w.wname);
                      ("native_seconds", Json.Float native);
                      ("dsl_seconds", Json.Float dsl);
                      ("dsl_exec_seconds", Json.Float dsl_exec);
                      ("overhead", Json.Float (dsl_exec /. native));
                    ]))
            (Lazy.force suite))

let micro () =
  Printf.printf
    "Substrate micro-benchmarks (bechamel OLS fits, ns/run): the primitive\n\
     operations the bucket structures are built from.\n\n";
  let open Bechamel in
  let vec = Support.Int_vec.create () in
  let atomic = Parallel.Atomic_array.make 1024 max_int in
  let lazy_pri = Parallel.Atomic_array.make 4096 5 in
  let tests =
    Test.make_grouped ~name:"substrate"
      [
        Test.make ~name:"int_vec_push_clear_1024"
          (Staged.stage (fun () ->
               for i = 0 to 1023 do
                 Support.Int_vec.push vec i
               done;
               Support.Int_vec.clear vec));
        Test.make ~name:"atomic_fetch_min_1024"
          (Staged.stage (fun () ->
               for i = 0 to 1023 do
                 ignore (Parallel.Atomic_array.fetch_min atomic (i land 1023) i)
               done));
        Test.make ~name:"lazy_buckets_fill_4096"
          (Staged.stage (fun () ->
               let lb =
                 Bucketing.Lazy_buckets.create ~num_vertices:4096 ~num_open:128
                   ~source:
                     (Bucketing.Lazy_buckets.Vector
                        (lazy_pri, Bucketing.Bucket_order.Lower_first, 1))
                   ()
               in
               Bucketing.Lazy_buckets.insert_all lb;
               ignore (Bucketing.Lazy_buckets.next_bucket lb)));
        Test.make ~name:"eager_buckets_insert_4096"
          (Staged.stage (fun () ->
               let eb = Bucketing.Eager_buckets.create ~num_workers:1 ~min_key:0 () in
               for v = 0 to 4095 do
                 Bucketing.Eager_buckets.insert eb ~tid:0 ~vertex:v ~key:(v land 63)
               done));
        Test.make ~name:"prefix_sum_4096"
          (let a = Array.make 4096 3 in
           Staged.stage (fun () -> ignore (Parallel.Prefix_sum.exclusive a)));
      ]
  in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg
      ~limit:(if !smoke then 100 else 1000)
      ~quota:(Time.second (if !smoke then 0.05 else 0.25))
      ()
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  Hashtbl.iter
    (fun name fit ->
      match Analyze.OLS.estimates fit with
      | Some (ns :: _) ->
          Printf.printf "  %-42s %12.1f ns/run\n" name ns;
          Report.row "micro"
            [ ("name", Json.String name); ("ns_per_run", Json.Float ns) ]
      | _ -> Printf.printf "  %-42s (no estimate)\n" name)
    results

let runtime () =
  Printf.printf
    "Parallel-runtime microbenchmarks: the substrate costs the ordered\n\
     engine pays every round. Spin barrier vs the seed's pure condvar\n\
     barrier (spin_budget 0), element-closure vs range iteration, and\n\
     atomic-array throughput. NOTE: with more workers than hardware cores\n\
     (this container exposes %d), barrier latency measures timesharing,\n\
     not the barrier.\n\n"
    (Domain.recommended_domain_count ());
  let worker_counts = [ 1; 2; 4 ] in
  (* -- barrier round-trip: empty run_workers episodes -- *)
  let episodes = if !smoke then 500 else 5_000 in
  Printf.printf "--- barrier round-trip, %d empty run_workers episodes ---\n" episodes;
  Printf.printf "%8s %14s %14s %9s\n" "workers" "spin(us)" "condvar(us)" "ratio";
  List.iter
    (fun nw ->
      let measure pool =
        for _ = 1 to 100 do
          Pool.run_workers pool (fun _ -> ())
        done;
        let _, s =
          Timer.time (fun () ->
              for _ = 1 to episodes do
                Pool.run_workers pool (fun _ -> ())
              done)
        in
        1e6 *. s /. float_of_int episodes
      in
      let spin =
        let p = Pool.create ~num_workers:nw () in
        Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> measure p)
      in
      let condvar =
        let p = Pool.create ~spin_budget:0 ~num_workers:nw () in
        Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> measure p)
      in
      Printf.printf "%8d %14.2f %14.2f %8.1fx\n" nw spin condvar (condvar /. spin);
      Report.row "runtime"
        [
          ("benchmark", Json.String "barrier_round_trip");
          ("workers", Json.Int nw);
          ("spin_us", Json.Float spin);
          ("condvar_us", Json.Float condvar);
        ])
    worker_counts;
  (* -- element closure vs range chunks: summing an array -- *)
  let n = if !smoke then 200_000 else 2_000_000 in
  let data = Array.init n (fun i -> i land 7) in
  let expected = Array.fold_left ( + ) 0 data in
  let reps = if !smoke then 3 else 10 in
  Printf.printf
    "\n--- parallel_for sum over %d elements (Melem/s, best of %d) ---\n" n reps;
  Printf.printf "%8s %12s %13s %12s %12s\n" "workers" "element" "range:dyn"
    "range:static" "range:guided";
  List.iter
    (fun nw ->
      Pool.with_pool ~num_workers:nw (fun p ->
          let partials = Array.make (nw * 8) 0 in
          let collect () =
            let t = ref 0 in
            for tid = 0 to nw - 1 do
              t := !t + partials.(tid * 8)
            done;
            if !t <> expected then failwith "bad sum";
            Array.fill partials 0 (Array.length partials) 0
          in
          let best f =
            let best = ref infinity in
            for _ = 1 to reps do
              let _, s = Timer.time f in
              collect ();
              if s < !best then best := s
            done;
            float_of_int n /. !best /. 1e6
          in
          let element =
            best (fun () ->
                Pool.parallel_for_tid p ~chunk:1024 ~lo:0 ~hi:n (fun ~tid i ->
                    let slot = tid * 8 in
                    partials.(slot) <- partials.(slot) + Array.unsafe_get data i))
          in
          let range sched =
            best (fun () ->
                Pool.parallel_for_ranges_tid p ~sched ~chunk:1024 ~lo:0 ~hi:n
                  (fun ~tid ~lo ~hi ->
                    let s = ref 0 in
                    for i = lo to hi - 1 do
                      s := !s + Array.unsafe_get data i
                    done;
                    let slot = tid * 8 in
                    partials.(slot) <- partials.(slot) + !s))
          in
          Printf.printf "%8d %12.1f %13.1f %12.1f %12.1f\n" nw element
            (range Pool.Dynamic) (range Pool.Static) (range Pool.Guided)))
    worker_counts;
  (* -- atomic array throughput -- *)
  let ops = if !smoke then 200_000 else 2_000_000 in
  Printf.printf "\n--- Atomic_array throughput, %d ops total (Mops/s) ---\n" ops;
  Printf.printf "%8s %12s %14s %14s\n" "workers" "fetch_min" "fetch_add" "fetch_add+pad";
  List.iter
    (fun nw ->
      Pool.with_pool ~num_workers:nw (fun p ->
          let mops s = float_of_int ops /. s /. 1e6 in
          let spread = Parallel.Atomic_array.make 1024 max_int in
          let _, min_s =
            Timer.time (fun () ->
                Pool.parallel_for_ranges p ~chunk:4096 ~lo:0 ~hi:ops
                  (fun ~lo ~hi ->
                    for i = lo to hi - 1 do
                      ignore
                        (Parallel.Atomic_array.fetch_min spread (i land 1023)
                           (ops - i))
                    done))
          in
          (* Per-worker counters hammered in place: the padded layout keeps
             each counter on its own cache line. *)
          let per_worker = ops / nw in
          let bump counters =
            Timer.time (fun () ->
                Pool.run_workers p (fun tid ->
                    for _ = 1 to per_worker do
                      ignore (Parallel.Atomic_array.fetch_add counters tid 1)
                    done))
          in
          let _, plain_s = bump (Parallel.Atomic_array.make nw 0) in
          let _, padded_s = bump (Parallel.Atomic_array.make_padded nw 0) in
          let bump_mops s = float_of_int (per_worker * nw) /. s /. 1e6 in
          Printf.printf "%8d %12.1f %14.1f %14.1f\n" nw (mops min_s)
            (bump_mops plain_s) (bump_mops padded_s)))
    worker_counts

(* ------------------------------------------------------------------ *)
(* Query service: batching and the ALT landmark cache                   *)

let service_bench () =
  Printf.printf
    "Query service (docs/SERVICE.md): source-sharing batching amortizes\n\
     one engine run across many point queries, and a warmed ALT landmark\n\
     cache prunes A* to a corridor of the graph.\n\n";
  let p = Lazy.force pool in
  let w =
    List.fold_left
      (fun best c ->
        if Csr.num_edges c.directed > Csr.num_edges best.directed then c
        else best)
      (List.hd (Lazy.force suite))
      (Lazy.force suite)
  in
  let handle = dir_handle w in
  let schedule = graphit_schedule w in
  let n = Csr.num_vertices w.directed in
  let num_queries = if !smoke then 8 else 48 in
  let targets = List.init num_queries (fun i -> 1 + ((i * 6967) mod (n - 1))) in
  let mk_core ~max_batch ~landmarks =
    Service.Core.create ~pool:p ~handle
      ~config:
        {
          Service.Config.queue_capacity = 4096;
          max_batch;
          default_deadline_ms = 0.;
          landmarks;
          schedule;
          slow_query_ms = 0.;
          graph_file = None;
          symmetric = false;
          compact_ops = 4096;
        }
      ()
  in
  (* Submit the whole burst, then drain: exactly what the server's
     runner thread does when clients pile up. *)
  let run_burst core ops =
    let pending = ref (List.length ops) in
    List.iteri
      (fun i op ->
        Service.Core.submit core
          { Service.Protocol.id = i; op; deadline_ms = None }
          ~reply:(fun resp ->
            (match resp.Service.Protocol.status with
            | Service.Protocol.Ok -> ()
            | _ -> failwith "service bench: non-ok reply");
            decr pending))
      ops;
    while !pending > 0 do
      ignore (Service.Core.process_pending core ~max_wait_s:0.05)
    done
  in
  let ppsp_ops =
    List.map (fun t -> Service.Protocol.Ppsp { source = 0; target = t }) targets
  in
  let solo_core = mk_core ~max_batch:1 ~landmarks:0 in
  let batch_core = mk_core ~max_batch:4096 ~landmarks:0 in
  let (), solo = time_stats (fun () -> run_burst solo_core ppsp_ops) in
  let (), batched = time_stats (fun () -> run_burst batch_core ppsp_ops) in
  let qps s = float_of_int num_queries /. s in
  Printf.printf
    "ppsp burst on %s: %d queries, one source\n\
    \  max-batch=1  %8.4f s  (%8.1f q/s)\n\
    \  batched      %8.4f s  (%8.1f q/s)  -> %.1fx throughput\n\n"
    w.wname num_queries solo.Timer.median
    (qps solo.Timer.median)
    batched.Timer.median
    (qps batched.Timer.median)
    (solo.Timer.median /. batched.Timer.median);
  Report.row "service"
    [
      ("experiment", Json.String "ppsp_batching");
      ("graph", Json.String w.wname);
      ("queries", Json.Int num_queries);
      ("unbatched_seconds", Json.Float solo.Timer.median);
      ("batched_seconds", Json.Float batched.Timer.median);
      ("throughput_gain", Json.Float (solo.Timer.median /. batched.Timer.median));
    ];
  (* ALT: same A* query cold (h = 0, i.e. plain ppsp ordering) and with
     the warmed landmark bounds, on the road workload where the corridor
     effect is what the paper's Section 6.1 exploits. The farthest
     reachable vertex makes it visible; answers must agree (the
     heuristic is consistent). *)
  let w =
    List.fold_left
      (fun best c ->
        if
          is_road c
          && (not (is_road best))
          || is_road c && Csr.num_edges c.directed > Csr.num_edges best.directed
        then c
        else best)
      (List.hd (Lazy.force suite))
      (Lazy.force suite)
  in
  let handle = dir_handle w in
  let schedule = graphit_schedule w in
  let landmarks = 4 in
  let alt = Service.Alt.create ~pool:p ~handle ~schedule ~landmarks () in
  let (), warm_seconds = Timer.time (fun () -> ignore (Service.Alt.warm_all alt)) in
  let dist =
    (Algorithms.Sssp_delta.run ~pool:p ~graph:w.directed ~handle ~schedule
       ~source:0 ())
      .Algorithms.Sssp_delta.dist
  in
  let target = ref 0 in
  let best = ref (-1) in
  Array.iteri
    (fun v d ->
      if d <> Bucketing.Bucket_order.null_priority && d > !best then begin
        best := d;
        target := v
      end)
    dist;
  let target = !target in
  let astar heuristic () =
    Algorithms.Astar.run ~pool:p ~graph:w.directed ?heuristic ~handle ~schedule
      ~source:0 ~target ()
  in
  let r_cold, cold = time_stats (astar None) in
  let r_warm, warm = time_stats (astar (Service.Alt.heuristic alt ~target)) in
  assert (r_cold.Algorithms.Astar.distance = r_warm.Algorithms.Astar.distance);
  let edges r = r.Algorithms.Astar.stats.Stats.edges_relaxed in
  Printf.printf
    "astar 0 -> %d on %s (distance %d, %d landmarks, warm cost %.4f s)\n\
    \  cold (h=0)   %8.4f s  %9d edges relaxed\n\
    \  ALT-warmed   %8.4f s  %9d edges relaxed  -> %.1fx faster, %.1fx fewer edges\n"
    target w.wname r_cold.Algorithms.Astar.distance landmarks warm_seconds
    cold.Timer.median (edges r_cold) warm.Timer.median (edges r_warm)
    (cold.Timer.median /. warm.Timer.median)
    (float_of_int (edges r_cold) /. float_of_int (max 1 (edges r_warm)));
  Report.row "service"
    [
      ("experiment", Json.String "astar_alt");
      ("graph", Json.String w.wname);
      ("landmarks", Json.Int landmarks);
      ("warm_cost_seconds", Json.Float warm_seconds);
      ("cold_seconds", Json.Float cold.Timer.median);
      ("warm_seconds", Json.Float warm.Timer.median);
      ("cold_edges_relaxed", Json.Int (edges r_cold));
      ("warm_edges_relaxed", Json.Int (edges r_warm));
      ("speedup", Json.Float (cold.Timer.median /. warm.Timer.median));
      ("distance", Json.Int r_cold.Algorithms.Astar.distance);
    ]

(* ------------------------------------------------------------------ *)
(* Dynamic graphs: mutation throughput, incremental repair, compaction  *)

let dynamic_bench () =
  Printf.printf
    "Dynamic graphs (docs/INTERNALS.md): Delta batches commit fresh CSR\n\
     versions, incremental SSSP repairs the previous answer outward from\n\
     the affected frontier, and compaction truncates the delta log while\n\
     queries keep their pinned snapshots.\n\n";
  let p = Lazy.force pool in
  let w =
    List.fold_left
      (fun best c ->
        if Csr.num_edges c.directed > Csr.num_edges best.directed then c
        else best)
      (List.hd (Lazy.force suite))
      (Lazy.force suite)
  in
  let g = w.directed in
  let n = Csr.num_vertices g in
  let schedule = graphit_schedule w in
  let rng = Rng.create 4242 in
  (* A random live edge, for deletes and reweights that actually bite. *)
  let live_edge g =
    let deg = Csr.out_degrees_cached g in
    let rec pick tries =
      if tries = 0 then None
      else
        let u = Rng.int rng n in
        if deg.(u) = 0 then pick (tries - 1)
        else begin
          let k = Rng.int rng deg.(u) in
          let i = ref 0 in
          let hit = ref None in
          Csr.iter_out g u (fun v _w ->
              if !i = k then hit := Some (u, v);
              incr i);
          !hit
        end
    in
    pick 32
  in
  let insert () =
    Delta.Insert
      { src = Rng.int rng n; dst = Rng.int rng n; weight = 1 + Rng.int rng 999 }
  in
  let gen_batch g ~ops =
    Array.init ops (fun _ ->
        match Rng.int rng 4 with
        | 0 | 1 -> insert ()
        | 2 -> (
            match live_edge g with
            | Some (src, dst) ->
                Delta.Reweight { src; dst; weight = 1 + Rng.int rng 999 }
            | None -> insert ())
        | _ -> (
            match live_edge g with
            | Some (src, dst) -> Delta.Delete { src; dst }
            | None -> insert ()))
  in
  (* -- update-batch throughput: each commit applies the batch into a
     fresh CSR version, so this measures the full cost a serving process
     pays per mutate op -- *)
  let num_batches = if !smoke then 8 else 48 in
  let ops_per_batch = if !smoke then 16 else 256 in
  let v = Versioned.create g in
  let (), commit_seconds =
    Timer.time (fun () ->
        for _ = 1 to num_batches do
          let live = Handle.csr (Versioned.latest v) in
          ignore (Versioned.commit v (gen_batch live ~ops:ops_per_batch))
        done)
  in
  let total_ops = num_batches * ops_per_batch in
  let ops_s = float_of_int total_ops /. commit_seconds in
  Printf.printf
    "update throughput on %s (%d vertices, %d edges):\n\
    \  %d batches x %d ops  %8.4f s  -> %10.0f edge ops/s (%.2f ms/commit)\n\n"
    w.wname n (Csr.num_edges g) num_batches ops_per_batch commit_seconds ops_s
    (1000. *. commit_seconds /. float_of_int num_batches);
  Report.row "dynamic"
    [
      ("experiment", Json.String "update_throughput");
      ("graph", Json.String w.wname);
      ("batches", Json.Int num_batches);
      ("ops_per_batch", Json.Int ops_per_batch);
      ("seconds", Json.Float commit_seconds);
      ("ops_per_second", Json.Float ops_s);
    ];
  (* -- compaction pause: the log built above is rebuilt into a fresh
     hot base; this is the stall a background compactor hides -- *)
  let (), pause =
    Timer.time (fun () -> ignore (Versioned.compact v))
  in
  Printf.printf "compaction after %d commits: %8.4f s pause\n\n" num_batches pause;
  Report.row "dynamic"
    [
      ("experiment", Json.String "compaction_pause");
      ("graph", Json.String w.wname);
      ("commits_folded", Json.Int num_batches);
      ("seconds", Json.Float pause);
    ];
  (* -- incremental repair vs from-scratch, against affected-set size:
     small batches repair a corridor; ever-larger batches converge on
     (and eventually fall back to) the full recompute -- *)
  let prev =
    (Algorithms.Sssp_delta.run ~pool:p ~graph:g ~handle:(dir_handle w)
       ~schedule ~source:0 ())
      .Algorithms.Sssp_delta.dist
  in
  let sizes = if !smoke then [ 1; 16 ] else [ 1; 16; 128; 1024 ] in
  Printf.printf "incremental repair vs from-scratch (source 0, %s):\n%8s %10s %12s %12s %9s %s\n"
    w.wname "ops" "affected" "incr (s)" "full (s)" "speedup" "fellback";
  List.iter
    (fun ops ->
      let batch = gen_batch g ~ops in
      let g' = Delta.apply g batch in
      let h' = Handle.create g' in
      let affected = ref 0 in
      let fell_back = ref false in
      let r_inc, inc =
        time_stats (fun () ->
            let r =
              Algorithms.Sssp_delta.run_incremental ~pool:p ~old_graph:g
                ~graph:g' ~handle:h' ~schedule ~source:0 ~batch ~prev ()
            in
            affected := r.Algorithms.Sssp_delta.affected;
            fell_back := r.Algorithms.Sssp_delta.fell_back;
            r)
      in
      let r_full, full =
        time_stats (fun () ->
            Algorithms.Sssp_delta.run ~pool:p ~graph:g' ~handle:h' ~schedule
              ~source:0 ())
      in
      assert (
        r_inc.Algorithms.Sssp_delta.result.Algorithms.Sssp_delta.dist
        = r_full.Algorithms.Sssp_delta.dist);
      let speedup = full.Timer.median /. inc.Timer.median in
      Printf.printf "%8d %10d %12.5f %12.5f %8.1fx %b\n" ops !affected
        inc.Timer.median full.Timer.median speedup !fell_back;
      Report.row "dynamic"
        [
          ("experiment", Json.String "incremental_vs_full");
          ("graph", Json.String w.wname);
          ("ops", Json.Int ops);
          ("affected", Json.Int !affected);
          ("incremental_seconds", Json.Float inc.Timer.median);
          ("full_seconds", Json.Float full.Timer.median);
          ("speedup", Json.Float speedup);
          ("fell_back", Json.Bool !fell_back);
        ])
    sizes

let () =
  let tracer =
    match !trace_out with
    | None -> None
    | Some _ ->
        (* A bench run is long: a deep ring keeps a useful tail of the
           timeline even when early sections have wrapped out. *)
        let t = Observe.Tracer.create ~capacity_per_track:65536 () in
        Observe.Tracer.set_current (Some t);
        Observe.Tracer.install_pool_hooks ();
        Some t
  in
  (* Detach the process-wide worker hook even if a section raises;
     otherwise every later Pool user pays for tracing into a dead ring. *)
  Fun.protect
    ~finally:(fun () ->
      if tracer <> None then begin
        Observe.Tracer.remove_pool_hooks ();
        Observe.Tracer.set_current None
      end)
  @@ fun () ->
  Printf.printf "GraphIt ordered-extension benchmark suite\n";
  Printf.printf "workers=%d scale=%s (see EXPERIMENTS.md for methodology)\n" !workers
    (if !big then "big" else "default");
  List.iter
    (fun wl ->
      Printf.printf "  %-10s ~ %-22s |V|=%-7d |E|=%-8d\n" wl.wname wl.paper_analog
        (Csr.num_vertices wl.directed) (Csr.num_edges wl.directed))
    (Lazy.force suite);
  section "fig1" "Figure 1: ordered vs unordered speedup" fig1;
  section "tab4" "Table 4: running times across frameworks" tab4;
  section "fig4" "Figure 4: slowdown heatmap vs fastest" fig4;
  section "tab5" "Table 5: lines of code" tab5;
  section "tab6" "Table 6: bucket fusion" tab6;
  section "tab7" "Table 7: eager vs lazy bucket updates" tab7;
  section "fig11" "Figure 11: scalability" fig11;
  section "delta" "Section 6.2: delta selection" delta_sweep;
  section "traverse" "Traversal kernel: push vs pull vs hybrid (SSSP)" traverse_bench;
  section "graphbin" "Binary graph format: load speed vs text parsing" graphbin_bench;
  section "autotune" "Section 6.2: autotuning" autotune_bench;
  section "ablate" "Ablations: fusion threshold, bucket window, widest path" ablation;
  section "dslperf" "DSL interpretation overhead vs native API" dsl_overhead;
  section "fig9" "Figure 9: generated code" fig9;
  section "micro" "Substrate micro-benchmarks" micro;
  section "runtime" "Parallel-runtime microbenchmarks" runtime;
  section "service" "Query service: batching and the ALT cache" service_bench;
  section "dynamic" "Dynamic graphs: commits, incremental repair, compaction"
    dynamic_bench;
  (match (tracer, !trace_out) with
  | Some t, Some path ->
      Observe.Tracer.set_current None;
      Observe.Tracer.write t path;
      Printf.printf "\nwrote timeline trace to %s (%d events; open in \
                     ui.perfetto.dev)\n" path (Observe.Tracer.event_count t)
  | _ -> ());
  Report.write
    ~meta:
      (Json.Obj
         (Report.provenance ()
         @ [
           ("workers", Json.Int !workers);
           ("scale", Json.String (if !big then "big" else "default"));
           ("smoke", Json.Bool !smoke);
           ("repeats", Json.Int (effective_repeats ()));
           ("layout", Json.String (Layout.kind_to_string !bench_layout));
           ("reorder", Json.String (Reorder.kind_to_string !bench_reorder));
           ( "suite",
             Json.List
               (List.map
                  (fun wl ->
                    Json.Obj
                      [
                        ("name", Json.String wl.wname);
                        ("paper_analog", Json.String wl.paper_analog);
                        ("num_vertices", Json.Int (Csr.num_vertices wl.directed));
                        ("num_edges", Json.Int (Csr.num_edges wl.directed));
                      ])
                  (Lazy.force suite)) );
         ]));
  Pool.shutdown (Lazy.force pool)
