(* Machine-readable export for the benchmark harness: sections register
   JSON rows as they run, and [write] dumps one object per run. The schema
   is documented in docs/OBSERVABILITY.md; EXPERIMENTS.md is regenerated
   from the human-readable tables, the JSON feeds dashboards and CI
   artifact diffing. *)

module Json = Support.Json

let path : string option ref = ref None
let rows : (string * Json.t) list ref = ref [] (* newest first *)

let set_path p = path := Some p
let enabled () = !path <> None

(* Rows are cheap to build but the drivers behind them are not: guard at
   the call site with [enabled] only when building the row itself is
   expensive. *)
let add section row = if enabled () then rows := (section, row) :: !rows
let row section fields = add section (Json.Obj fields)

(* Wall-clock of each executed section, recorded by the [section] runner so
   every section appears in the dump even when it registers no data rows. *)
let durations : (string * float) list ref = ref [] (* newest first *)
let add_duration id seconds = if enabled () then durations := (id, seconds) :: !durations

(* Group rows by section, preserving both section order and row order of
   first appearance. *)
let sections () =
  let ordered = List.rev !rows in
  let ids = ref [] in
  List.iter
    (fun (id, _) -> if not (List.mem id !ids) then ids := id :: !ids)
    ordered;
  List.rev_map
    (fun id ->
      ( id,
        Json.List
          (List.filter_map
             (fun (id', r) -> if id' = id then Some r else None)
             ordered) ))
    !ids
  |> List.rev

(* ------------------------------------------------------------------ *)
(* Provenance: where was this report produced? bench_diff refuses to
   compare timings across machines/configurations unless forced, so the
   meta block must carry enough identity to detect the mismatch. *)

let hostname () = try Unix.gethostname () with _ -> "unknown"

(* Resolve HEAD by reading the git files directly — no subprocess, and
   a graceful "unknown" outside a work tree (e.g. a release tarball). *)
let git_commit () =
  let read_first_line path =
    try
      In_channel.with_open_text path (fun ic ->
          match In_channel.input_line ic with Some l -> Some (String.trim l) | None -> None)
    with Sys_error _ -> None
  in
  let looks_like_hash s =
    String.length s >= 7
    && String.for_all
         (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
         s
  in
  let from_packed_refs refname =
    try
      In_channel.with_open_text ".git/packed-refs" (fun ic ->
          let rec scan () =
            match In_channel.input_line ic with
            | None -> None
            | Some line ->
                let line = String.trim line in
                if
                  String.length line > 41
                  && String.sub line 41 (String.length line - 41) = refname
                then Some (String.sub line 0 40)
                else scan ()
          in
          scan ())
    with Sys_error _ -> None
  in
  match read_first_line ".git/HEAD" with
  | Some head when looks_like_hash head -> head (* detached HEAD *)
  | Some head
    when String.length head > 5 && String.sub head 0 5 = "ref: " -> (
      let refname = String.trim (String.sub head 5 (String.length head - 5)) in
      match read_first_line (".git/" ^ refname) with
      | Some hash when looks_like_hash hash -> hash
      | _ -> (
          match from_packed_refs refname with
          | Some hash -> hash
          | None -> "unknown"))
  | _ -> "unknown"

let provenance () =
  [
    ("git_commit", Json.String (git_commit ()));
    ("hostname", Json.String (hostname ()));
    ("ocaml_version", Json.String Sys.ocaml_version);
  ]

let write ~meta =
  match !path with
  | None -> ()
  | Some file ->
      let doc =
        Json.Obj
          [
            ("meta", meta);
            ( "section_seconds",
              Json.Obj
                (List.rev_map (fun (id, s) -> (id, Json.Float s)) !durations) );
            ("sections", Json.Obj (sections ()));
          ]
      in
      let oc = open_out file in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          let ppf = Format.formatter_of_out_channel oc in
          Json.pp ppf doc;
          Format.pp_print_newline ppf ());
      Printf.printf "\nwrote JSON report to %s (%d sections)\n" file
        (List.length (sections ()))
